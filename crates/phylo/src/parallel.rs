//! Parallelism layers.
//!
//! The paper exploits RAxML parallelism at three granularities:
//!
//! 1. **Task level** — embarrassingly parallel bootstraps/inferences under a
//!    master–worker scheme (§3.1). Here: [`crate::farm`], the work-stealing
//!    inference farm (the MPI analogue); [`run_master_worker`] is the
//!    original single-queue form, kept for comparison and simple callers.
//! 2. **Loop level** — the likelihood loops distributed across processors
//!    (the RAxML-OMP / LLP-across-SPEs layer). Here: rayon-chunked kernel
//!    dispatchers ([`newview_dispatch`], [`evaluate_dispatch`],
//!    [`newton_dispatch`]).
//! 3. **Data level** — the 2-lane vector kernels themselves
//!    ([`crate::likelihood::kernels`]).

use crate::likelihood::kernels::{
    self, evaluate_lnl, Child, EvalOperand, Mat4, NewtonScratch, ScaleStats,
};
use crate::likelihood::{KernelKind, ScalingCheck, TILE};
use crate::model::ExpImpl;
use rayon::prelude::*;
use std::sync::OnceLock;
use std::time::Instant;

/// Minimum patterns per rayon chunk: below this the spawn overhead dominates
/// the ~100ns/pattern kernel work.
const MIN_CHUNK: usize = 64;

/// Fixed pattern-chunk width for the parallel dispatchers.
///
/// Deliberately *not* derived from `rayon::current_num_threads()`: the
/// chunk boundaries define the floating-point association of the reduction,
/// so they must be a pure function of the alignment. Combined with the
/// indexed partial-sum buffers below (each chunk writes its partial into
/// its own slot, and the slots are folded sequentially in chunk order),
/// this makes `evaluate_dispatch`/`newton_dispatch` bit-reproducible
/// run-to-run and across any thread count — the BEAGLE-style determinism
/// contract for parallel likelihood accumulation.
const PAR_CHUNK: usize = 256;

/// Wall-clock telemetry for the loop-level dispatchers: batch latency
/// histograms (`evaluate_dispatch_ns`, `newton_dispatch_ns`) and pattern
/// throughput counters (`*_patterns_total`, patterns/sec once divided by
/// wall time). Handles are resolved from the global [`obs`] registry once
/// per process; while the registry is disabled every dispatch pays one
/// atomic load and skips the clock reads entirely, so the instrumented
/// path stays allocation-free and — because timing never feeds back into
/// the arithmetic — bit-identical in its likelihood results.
///
/// `newview_dispatch` is deliberately *not* instrumented: it runs per tree
/// node rather than per optimization pass, and two clock reads per node
/// would be measurable against the ~100ns/pattern kernel.
struct DispatchMetrics {
    evaluate_ns: obs::Histogram,
    newton_ns: obs::Histogram,
    evaluate_patterns: obs::Counter,
    newton_patterns: obs::Counter,
}

fn dispatch_metrics() -> Option<&'static DispatchMetrics> {
    let reg = obs::global();
    if !reg.is_enabled() {
        return None;
    }
    static CELL: OnceLock<DispatchMetrics> = OnceLock::new();
    Some(CELL.get_or_init(|| DispatchMetrics {
        evaluate_ns: reg.histogram("evaluate_dispatch_ns"),
        newton_ns: reg.histogram("newton_dispatch_ns"),
        evaluate_patterns: reg.counter("evaluate_patterns_total"),
        newton_patterns: reg.counter("newton_patterns_total"),
    }))
}

/// Restrict a `newview` child operand to the pattern range `[lo, hi)`.
///
/// Inner partials live in the tiled block layout, so the `x` slice is cut on
/// whole blocks: `lo` must be block-aligned (chunk boundaries are multiples of
/// `PAR_CHUNK`, which `TILE` divides), and the end rounds up so a ragged tail
/// chunk keeps its zero-padded final block.
fn slice_child<'a>(c: &Child<'a>, lo: usize, hi: usize, n_rates: usize) -> Child<'a> {
    debug_assert_eq!(lo % TILE, 0, "chunk start must be tile-aligned");
    let block = n_rates * 4 * TILE;
    match *c {
        Child::Tip { codes, tables } => Child::Tip { codes: &codes[lo..hi], tables },
        Child::Inner { x, scale, pmats } => Child::Inner {
            x: &x[(lo / TILE) * block..hi.div_ceil(TILE) * block],
            scale: &scale[lo..hi],
            pmats,
        },
    }
}

/// Restrict an evaluate/makenewz operand to the pattern range `[lo, hi)`.
/// Same block-aligned slicing of tiled `x` as [`slice_child`].
fn slice_operand<'a>(
    op: &EvalOperand<'a>,
    lo: usize,
    hi: usize,
    n_rates: usize,
) -> EvalOperand<'a> {
    debug_assert_eq!(lo % TILE, 0, "chunk start must be tile-aligned");
    let block = n_rates * 4 * TILE;
    match *op {
        EvalOperand::Tip { codes } => EvalOperand::Tip { codes: &codes[lo..hi] },
        EvalOperand::Inner { x, scale } => EvalOperand::Inner {
            x: &x[(lo / TILE) * block..hi.div_ceil(TILE) * block],
            scale: &scale[lo..hi],
        },
    }
}

/// `newview` with optional loop-level parallelism over site patterns.
#[allow(clippy::too_many_arguments)]
pub fn newview_dispatch(
    left: &Child<'_>,
    right: &Child<'_>,
    out_x: &mut [f64],
    out_scale: &mut [u32],
    n_rates: usize,
    kind: KernelKind,
    scaling: ScalingCheck,
    parallel: bool,
) -> ScaleStats {
    let n = out_scale.len();
    if !parallel || n < 2 * MIN_CHUNK {
        return kernels::newview(left, right, out_x, out_scale, n_rates, kind, scaling);
    }
    let stride = n_rates * 4;
    let chunk = PAR_CHUNK;
    // `chunk * stride` f64s = `chunk / TILE` whole blocks, so every chunk
    // boundary of the tiled `out_x` is block-aligned; the final (short)
    // x-chunk absorbs the zero-padded tail block and there are exactly as
    // many x-chunks as scale-chunks.
    const _: () = assert!(PAR_CHUNK.is_multiple_of(TILE), "chunks must cover whole tiles");
    out_x
        .par_chunks_mut(chunk * stride)
        .zip(out_scale.par_chunks_mut(chunk))
        .enumerate()
        .map(|(ci, (ox, os))| {
            let lo = ci * chunk;
            let hi = lo + os.len();
            let l = slice_child(left, lo, hi, n_rates);
            let r = slice_child(right, lo, hi, n_rates);
            kernels::newview(&l, &r, ox, os, n_rates, kind, scaling)
        })
        .reduce(ScaleStats::default, ScaleStats::merge)
}

/// `evaluate` with optional loop-level parallelism over site patterns.
///
/// Deterministic: each fixed-width chunk writes its partial log-likelihood
/// into an indexed slot and the slots are summed sequentially in chunk
/// order, so the result is bit-identical run-to-run and across thread
/// counts (see [`PAR_CHUNK`]).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_dispatch(
    u: &EvalOperand<'_>,
    v: &EvalOperand<'_>,
    pmats: &[Mat4],
    freqs: &[f64; 4],
    weights: &[f64],
    n_rates: usize,
    kind: KernelKind,
    parallel: bool,
) -> f64 {
    let n = weights.len();
    let metrics = dispatch_metrics();
    let t0 = metrics.map(|_| Instant::now());
    let lnl = if !parallel || n < 2 * MIN_CHUNK {
        evaluate_lnl(u, v, pmats, freqs, weights, n_rates, kind)
    } else {
        let chunk = PAR_CHUNK;
        let mut partials = vec![0.0f64; n.div_ceil(chunk)];
        partials
            .par_chunks_mut(1)
            .zip(weights.par_chunks(chunk))
            .enumerate()
            .map(|(ci, (slot, w))| {
                let lo = ci * chunk;
                let hi = lo + w.len();
                let su = slice_operand(u, lo, hi, n_rates);
                let sv = slice_operand(v, lo, hi, n_rates);
                slot[0] = evaluate_lnl(&su, &sv, pmats, freqs, w, n_rates, kind);
            })
            .reduce(|| (), |(), ()| ());
        partials.iter().sum()
    };
    if let (Some(m), Some(t0)) = (metrics, t0) {
        m.evaluate_ns.record(t0.elapsed().as_nanos() as u64);
        m.evaluate_patterns.add(n as u64);
    }
    lnl
}

/// Newton derivatives with optional loop-level parallelism, on raw
/// sum-table slices with caller-owned exponential scratch (the sequential
/// path is zero-allocation; each parallel chunk fills a thread-local
/// scratch from sub-slices, no sum-table copies).
#[allow(clippy::too_many_arguments)]
pub fn newton_dispatch(
    st_data: &[f64],
    st_scale: &[u32],
    n_rates: usize,
    lambdas: &[f64; 4],
    rates: &[f64],
    t: f64,
    weights: &[f64],
    exp_impl: ExpImpl,
    kind: KernelKind,
    parallel: bool,
    scratch: &mut NewtonScratch,
) -> (f64, f64, f64) {
    let n = weights.len();
    let metrics = dispatch_metrics();
    let t0 = metrics.map(|_| Instant::now());
    let derivs = if !parallel || n < 2 * MIN_CHUNK {
        kernels::newton_derivatives_scratch(
            st_data, st_scale, n_rates, lambdas, rates, t, weights, exp_impl, kind, scratch,
        )
    } else {
        let stride = n_rates * 4;
        let chunk = PAR_CHUNK;
        // Deterministic reduction, same scheme as `evaluate_dispatch`: indexed
        // per-chunk partial triples, folded sequentially in chunk order.
        let mut partials = vec![[0.0f64; 3]; n.div_ceil(chunk)];
        partials
            .par_chunks_mut(1)
            .zip(weights.par_chunks(chunk))
            .enumerate()
            .map(|(ci, (slot, w))| {
                let lo = ci * chunk;
                let hi = lo + w.len();
                let mut local = NewtonScratch::default();
                let (l, d1, d2) = kernels::newton_derivatives_scratch(
                    &st_data[lo * stride..hi * stride],
                    &st_scale[lo..hi],
                    n_rates,
                    lambdas,
                    rates,
                    t,
                    w,
                    exp_impl,
                    kind,
                    &mut local,
                );
                slot[0] = [l, d1, d2];
            })
            .reduce(|| (), |(), ()| ());
        partials.iter().fold((0.0, 0.0, 0.0), |a, p| (a.0 + p[0], a.1 + p[1], a.2 + p[2]))
    };
    if let (Some(m), Some(t0)) = (metrics, t0) {
        m.newton_ns.record(t0.elapsed().as_nanos() as u64);
        m.newton_patterns.add(n as u64);
    }
    derivs
}

/// Task-level master–worker: distributes `jobs` across `n_workers` OS
/// threads through a shared queue and collects results in job order — the
/// thread analogue of the paper's MPI master–worker scheme for bootstraps
/// and multiple inferences (§3.1).
///
/// Superseded by [`crate::farm`] (work-stealing deques, backpressure,
/// typed per-job failures); kept as the simple single-queue form for
/// callers that want all-or-nothing semantics.
///
/// # Panics
///
/// If a job panics, the *original* panic payload is re-raised on the
/// calling thread once the remaining workers have stopped — the caller
/// sees the real failure, not a poisoned-mutex or missing-result artifact.
pub fn run_master_worker<J, R, F>(jobs: Vec<J>, n_workers: usize, worker: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    assert!(n_workers >= 1, "need at least one worker");
    let n_jobs = jobs.len();
    let queue: std::sync::Mutex<std::collections::VecDeque<(usize, J)>> =
        std::sync::Mutex::new(jobs.into_iter().enumerate().collect());
    let results: std::sync::Mutex<Vec<Option<R>>> =
        std::sync::Mutex::new((0..n_jobs).map(|_| None).collect());
    // First panic payload from any worker; re-raised after the scope ends.
    let panic_slot: std::sync::Mutex<Option<Box<dyn std::any::Any + Send>>> =
        std::sync::Mutex::new(None);

    let worker = &worker;
    std::thread::scope(|s| {
        for _ in 0..n_workers.min(n_jobs.max(1)) {
            s.spawn(|| loop {
                let job = queue.lock().unwrap().pop_front();
                match job {
                    Some((idx, j)) => {
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            worker(idx, j)
                        }));
                        match run {
                            Ok(r) => results.lock().unwrap()[idx] = Some(r),
                            Err(payload) => {
                                let mut slot = panic_slot.lock().unwrap();
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                break;
                            }
                        }
                    }
                    None => break,
                }
            });
        }
    });

    if let Some(payload) = panic_slot.into_inner().unwrap() {
        std::panic::resume_unwind(payload);
    }

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker completed every job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::engine::LikelihoodEngine;
    use crate::likelihood::LikelihoodConfig;
    use crate::model::{GammaRates, SubstModel};
    use crate::simulate::SimulationConfig;
    use crate::tree::Tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// The rayon-chunked dispatchers only engage above MIN_CHUNK patterns;
    /// this exercises them on a large-pattern alignment and checks exact
    /// agreement with the sequential path through the full engine
    /// (newview, evaluate and the Newton derivatives all go parallel).
    #[test]
    fn parallel_paths_match_sequential_on_large_alignments() {
        // High divergence ⇒ >> 128 distinct patterns.
        let w =
            SimulationConfig { mean_branch: 0.4, ..SimulationConfig::new(10, 3000, 99) }.generate();
        assert!(
            w.alignment.n_patterns() > 2 * MIN_CHUNK,
            "need enough patterns to engage the parallel path: {}",
            w.alignment.n_patterns()
        );
        let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
        let rates = GammaRates::standard(0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut tree = Tree::random(10, 0.2, &mut rng).unwrap();

        let mut seq_engine = LikelihoodEngine::new(
            &w.alignment,
            model.clone(),
            rates.clone(),
            LikelihoodConfig { parallel: false, ..LikelihoodConfig::optimized() },
        );
        let mut par_engine = LikelihoodEngine::new(
            &w.alignment,
            model,
            rates,
            LikelihoodConfig { parallel: true, ..LikelihoodConfig::optimized() },
        );

        let a = seq_engine.log_likelihood(&tree);
        let b = par_engine.log_likelihood(&tree);
        // Seq vs par may differ by the chunked reduction's floating-point
        // association (documented epsilon); par vs par must be bit-equal.
        assert!((a - b).abs() < 1e-9, "evaluate: {a} vs {b}");
        let b2 = par_engine.log_likelihood(&tree);
        assert_eq!(b.to_bits(), b2.to_bits(), "parallel evaluate not reproducible");

        // Branch optimization drives newton_dispatch + newview_dispatch.
        // The chunked reduction changes floating-point association, which
        // can shift Newton's final iterate slightly — so the seq-vs-par
        // comparison is near-equality, not bit-equality.
        let tree0 = tree.clone();
        let mut tree2 = tree.clone();
        let la = seq_engine.optimize_all_branches(&mut tree, 2);
        let lb = par_engine.optimize_all_branches(&mut tree2, 2);
        assert!((la - lb).abs() < 1e-3, "optimize: {la} vs {lb}");
        for (e1, e2) in tree.edges().iter().zip(tree2.edges().iter()) {
            assert_eq!(e1, e2);
            let l1 = tree.branch_length(e1.0, e1.1);
            let l2 = tree2.branch_length(e2.0, e2.1);
            assert!((l1 - l2).abs() < 1e-4, "branch {e1:?}: {l1} vs {l2}");
        }

        // A second, fresh parallel engine repeating the same optimization
        // from the same starting tree must agree with the first *to the
        // bit* — the reduction order is fixed by PAR_CHUNK, not by
        // scheduling.
        let model2 = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
        let mut par_engine2 = LikelihoodEngine::new(
            &w.alignment,
            model2,
            GammaRates::standard(0.7).unwrap(),
            LikelihoodConfig { parallel: true, ..LikelihoodConfig::optimized() },
        );
        let mut tree3 = tree0.clone();
        let lb2 = par_engine2.optimize_all_branches(&mut tree3, 2);
        assert_eq!(lb.to_bits(), lb2.to_bits(), "parallel optimize not reproducible");
        for (e2, e3) in tree2.edges().iter().zip(tree3.edges().iter()) {
            assert_eq!(e2, e3);
            let l2 = tree2.branch_length(e2.0, e2.1);
            let l3 = tree3.branch_length(e3.0, e3.1);
            assert_eq!(l2.to_bits(), l3.to_bits(), "branch {e2:?}: {l2} vs {l3}");
        }
    }

    /// The determinism contract across thread counts: the same parallel
    /// likelihood under `RAYON_NUM_THREADS` ∈ {1, 2, 8} must be the same
    /// f64 to the bit. `PAR_CHUNK` fixes the chunk boundaries and the
    /// indexed partial buffers fix the reduction order, so thread count
    /// can only change scheduling, never association.
    #[test]
    fn parallel_lnl_is_bit_identical_across_thread_counts() {
        let w =
            SimulationConfig { mean_branch: 0.4, ..SimulationConfig::new(8, 2400, 41) }.generate();
        assert!(w.alignment.n_patterns() > 2 * MIN_CHUNK);
        let mut rng = StdRng::seed_from_u64(11);
        let tree = Tree::random(8, 0.2, &mut rng).unwrap();

        let run = |threads: &str| {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
            let mut engine = LikelihoodEngine::new(
                &w.alignment,
                model,
                GammaRates::standard(0.7).unwrap(),
                LikelihoodConfig { parallel: true, ..LikelihoodConfig::optimized() },
            );
            let lnl = engine.log_likelihood(&tree);
            let opt = engine.optimize_all_branches(&mut tree.clone(), 2);
            (lnl.to_bits(), opt.to_bits())
        };

        let one = run("1");
        let two = run("2");
        let eight = run("8");
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(one, two, "1 vs 2 threads");
        assert_eq!(one, eight, "1 vs 8 threads");
    }

    #[test]
    fn master_worker_preserves_job_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let results = run_master_worker(jobs, 4, |_, j| j * j);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, (i * i) as u64);
        }
    }

    #[test]
    fn master_worker_runs_every_job_once() {
        let counter = AtomicUsize::new(0);
        let results =
            run_master_worker(vec![(); 57], 8, |_, ()| counter.fetch_add(1, Ordering::SeqCst));
        assert_eq!(results.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn master_worker_single_worker_is_sequential() {
        let results = run_master_worker(vec![1, 2, 3], 1, |idx, j| (idx, j));
        assert_eq!(results, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn master_worker_more_workers_than_jobs() {
        let results = run_master_worker(vec![7], 16, |_, j: i32| j + 1);
        assert_eq!(results, vec![8]);
    }

    /// Regression: a panicking job used to surface as the unrelated
    /// `expect("worker completed every job")` (after poisoning the result
    /// mutex); the caller must see the job's own panic payload.
    #[test]
    fn master_worker_propagates_original_panic_payload() {
        let caught = std::panic::catch_unwind(|| {
            run_master_worker((0..20u32).collect(), 4, |_, j| {
                if j == 9 {
                    panic!("job nine failed in a specific way");
                }
                j
            })
        });
        let payload = caught.expect_err("worker panic must propagate");
        let message = crate::farm::panic_message(payload.as_ref());
        assert!(
            message.contains("job nine failed in a specific way"),
            "wrong payload propagated: {message}"
        );
    }
}
