//! Parallelism layers.
//!
//! The paper exploits RAxML parallelism at three granularities:
//!
//! 1. **Task level** — embarrassingly parallel bootstraps/inferences under a
//!    master–worker scheme (§3.1). Here: [`run_master_worker`], a
//!    work-queue over OS threads (the MPI analogue).
//! 2. **Loop level** — the likelihood loops distributed across processors
//!    (the RAxML-OMP / LLP-across-SPEs layer). Here: rayon-chunked kernel
//!    dispatchers ([`newview_dispatch`], [`evaluate_dispatch`],
//!    [`newton_dispatch`]).
//! 3. **Data level** — the 2-lane vector kernels themselves
//!    ([`crate::likelihood::kernels`]).

use crate::likelihood::kernels::{
    self, evaluate_lnl, Child, EvalOperand, Mat4, NewtonScratch, ScaleStats,
};
use crate::likelihood::{KernelKind, ScalingCheck};
use crate::model::ExpImpl;
use rayon::prelude::*;

/// Minimum patterns per rayon chunk: below this the spawn overhead dominates
/// the ~100ns/pattern kernel work.
const MIN_CHUNK: usize = 64;

/// Restrict a `newview` child operand to the pattern range `[lo, hi)`.
fn slice_child<'a>(c: &Child<'a>, lo: usize, hi: usize, n_rates: usize) -> Child<'a> {
    let stride = n_rates * 4;
    match *c {
        Child::Tip { codes, tables } => Child::Tip { codes: &codes[lo..hi], tables },
        Child::Inner { x, scale, pmats } => {
            Child::Inner { x: &x[lo * stride..hi * stride], scale: &scale[lo..hi], pmats }
        }
    }
}

/// Restrict an evaluate/makenewz operand to the pattern range `[lo, hi)`.
fn slice_operand<'a>(
    op: &EvalOperand<'a>,
    lo: usize,
    hi: usize,
    n_rates: usize,
) -> EvalOperand<'a> {
    let stride = n_rates * 4;
    match *op {
        EvalOperand::Tip { codes } => EvalOperand::Tip { codes: &codes[lo..hi] },
        EvalOperand::Inner { x, scale } => {
            EvalOperand::Inner { x: &x[lo * stride..hi * stride], scale: &scale[lo..hi] }
        }
    }
}

fn chunk_size(n_patterns: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    (n_patterns / (threads * 2)).max(MIN_CHUNK)
}

/// `newview` with optional loop-level parallelism over site patterns.
#[allow(clippy::too_many_arguments)]
pub fn newview_dispatch(
    left: &Child<'_>,
    right: &Child<'_>,
    out_x: &mut [f64],
    out_scale: &mut [u32],
    n_rates: usize,
    kind: KernelKind,
    scaling: ScalingCheck,
    parallel: bool,
) -> ScaleStats {
    let n = out_scale.len();
    if !parallel || n < 2 * MIN_CHUNK {
        return kernels::newview(left, right, out_x, out_scale, n_rates, kind, scaling);
    }
    let stride = n_rates * 4;
    let chunk = chunk_size(n);
    out_x
        .par_chunks_mut(chunk * stride)
        .zip(out_scale.par_chunks_mut(chunk))
        .enumerate()
        .map(|(ci, (ox, os))| {
            let lo = ci * chunk;
            let hi = lo + os.len();
            let l = slice_child(left, lo, hi, n_rates);
            let r = slice_child(right, lo, hi, n_rates);
            kernels::newview(&l, &r, ox, os, n_rates, kind, scaling)
        })
        .reduce(ScaleStats::default, ScaleStats::merge)
}

/// `evaluate` with optional loop-level parallelism over site patterns.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_dispatch(
    u: &EvalOperand<'_>,
    v: &EvalOperand<'_>,
    pmats: &[Mat4],
    freqs: &[f64; 4],
    weights: &[f64],
    n_rates: usize,
    kind: KernelKind,
    parallel: bool,
) -> f64 {
    let n = weights.len();
    if !parallel || n < 2 * MIN_CHUNK {
        return evaluate_lnl(u, v, pmats, freqs, weights, n_rates, kind);
    }
    let chunk = chunk_size(n);
    weights
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, w)| {
            let lo = ci * chunk;
            let hi = lo + w.len();
            let su = slice_operand(u, lo, hi, n_rates);
            let sv = slice_operand(v, lo, hi, n_rates);
            evaluate_lnl(&su, &sv, pmats, freqs, w, n_rates, kind)
        })
        .sum()
}

/// Newton derivatives with optional loop-level parallelism, on raw
/// sum-table slices with caller-owned exponential scratch (the sequential
/// path is zero-allocation; each parallel chunk fills a thread-local
/// scratch from sub-slices, no sum-table copies).
#[allow(clippy::too_many_arguments)]
pub fn newton_dispatch(
    st_data: &[f64],
    st_scale: &[u32],
    n_rates: usize,
    lambdas: &[f64; 4],
    rates: &[f64],
    t: f64,
    weights: &[f64],
    exp_impl: ExpImpl,
    kind: KernelKind,
    parallel: bool,
    scratch: &mut NewtonScratch,
) -> (f64, f64, f64) {
    let n = weights.len();
    if !parallel || n < 2 * MIN_CHUNK {
        return kernels::newton_derivatives_scratch(
            st_data, st_scale, n_rates, lambdas, rates, t, weights, exp_impl, kind, scratch,
        );
    }
    let stride = n_rates * 4;
    let chunk = chunk_size(n);
    weights
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, w)| {
            let lo = ci * chunk;
            let hi = lo + w.len();
            let mut local = NewtonScratch::default();
            kernels::newton_derivatives_scratch(
                &st_data[lo * stride..hi * stride],
                &st_scale[lo..hi],
                n_rates,
                lambdas,
                rates,
                t,
                w,
                exp_impl,
                kind,
                &mut local,
            )
        })
        .reduce(|| (0.0, 0.0, 0.0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2))
}

/// Task-level master–worker: distributes `jobs` across `n_workers` OS
/// threads through a shared queue and collects results in job order — the
/// thread analogue of the paper's MPI master–worker scheme for bootstraps
/// and multiple inferences (§3.1).
pub fn run_master_worker<J, R, F>(jobs: Vec<J>, n_workers: usize, worker: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    assert!(n_workers >= 1, "need at least one worker");
    let n_jobs = jobs.len();
    let queue: std::sync::Mutex<std::collections::VecDeque<(usize, J)>> =
        std::sync::Mutex::new(jobs.into_iter().enumerate().collect());
    let results: std::sync::Mutex<Vec<Option<R>>> =
        std::sync::Mutex::new((0..n_jobs).map(|_| None).collect());

    run_scoped_workers(n_workers.min(n_jobs.max(1)), &queue, &results, &worker);

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker completed every job"))
        .collect()
}

fn run_scoped_workers<J, R, F>(
    n_workers: usize,
    queue: &std::sync::Mutex<std::collections::VecDeque<(usize, J)>>,
    results: &std::sync::Mutex<Vec<Option<R>>>,
    worker: &F,
) where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    std::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(move || loop {
                let job = queue.lock().unwrap().pop_front();
                match job {
                    Some((idx, j)) => {
                        let r = worker(idx, j);
                        results.lock().unwrap()[idx] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::engine::LikelihoodEngine;
    use crate::likelihood::LikelihoodConfig;
    use crate::model::{GammaRates, SubstModel};
    use crate::simulate::SimulationConfig;
    use crate::tree::Tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// The rayon-chunked dispatchers only engage above MIN_CHUNK patterns;
    /// this exercises them on a large-pattern alignment and checks exact
    /// agreement with the sequential path through the full engine
    /// (newview, evaluate and the Newton derivatives all go parallel).
    #[test]
    fn parallel_paths_match_sequential_on_large_alignments() {
        // High divergence ⇒ >> 128 distinct patterns.
        let w =
            SimulationConfig { mean_branch: 0.4, ..SimulationConfig::new(10, 3000, 99) }.generate();
        assert!(
            w.alignment.n_patterns() > 2 * MIN_CHUNK,
            "need enough patterns to engage the parallel path: {}",
            w.alignment.n_patterns()
        );
        let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
        let rates = GammaRates::standard(0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut tree = Tree::random(10, 0.2, &mut rng).unwrap();

        let mut seq_engine = LikelihoodEngine::new(
            &w.alignment,
            model.clone(),
            rates.clone(),
            LikelihoodConfig { parallel: false, ..LikelihoodConfig::optimized() },
        );
        let mut par_engine = LikelihoodEngine::new(
            &w.alignment,
            model,
            rates,
            LikelihoodConfig { parallel: true, ..LikelihoodConfig::optimized() },
        );

        let a = seq_engine.log_likelihood(&tree);
        let b = par_engine.log_likelihood(&tree);
        assert!((a - b).abs() < 1e-9, "evaluate: {a} vs {b}");

        // Branch optimization drives newton_dispatch + newview_dispatch.
        // The chunked reduction changes floating-point association, which
        // can shift Newton's final iterate slightly — so the comparison is
        // near-equality, not bit-equality.
        let mut tree2 = tree.clone();
        let la = seq_engine.optimize_all_branches(&mut tree, 2);
        let lb = par_engine.optimize_all_branches(&mut tree2, 2);
        assert!((la - lb).abs() < 1e-3, "optimize: {la} vs {lb}");
        for (e1, e2) in tree.edges().iter().zip(tree2.edges().iter()) {
            assert_eq!(e1, e2);
            let l1 = tree.branch_length(e1.0, e1.1);
            let l2 = tree2.branch_length(e2.0, e2.1);
            assert!((l1 - l2).abs() < 1e-4, "branch {e1:?}: {l1} vs {l2}");
        }
    }

    #[test]
    fn master_worker_preserves_job_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let results = run_master_worker(jobs, 4, |_, j| j * j);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, (i * i) as u64);
        }
    }

    #[test]
    fn master_worker_runs_every_job_once() {
        let counter = AtomicUsize::new(0);
        let results =
            run_master_worker(vec![(); 57], 8, |_, ()| counter.fetch_add(1, Ordering::SeqCst));
        assert_eq!(results.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn master_worker_single_worker_is_sequential() {
        let results = run_master_worker(vec![1, 2, 3], 1, |idx, j| (idx, j));
        assert_eq!(results, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn master_worker_more_workers_than_jobs() {
        let results = run_master_worker(vec![7], 16, |_, j: i32| j + 1);
        assert_eq!(results, vec![8]);
    }
}
