//! Case-specialized likelihood kernels over pattern-blocked SoA tiles.
//!
//! `newview` at an inner node `p` with children `l`, `r` computes, for each
//! site pattern `i`, rate category `c` and state `s`:
//!
//! ```text
//! x_p[i,c,s] = (Σ_t P_l(c)[s][t] · x_l[i,c,t]) · (Σ_t P_r(c)[s][t] · x_r[i,c,t])
//! ```
//!
//! When a child is a tip its contribution collapses to a 16-entry lookup
//! (per rate category) — the paper's §5.2.3 case split (tip/tip, tip/inner,
//! inner/inner), each "a distinct — highly optimized — version of the loop".
//!
//! # Tiled CLV layout
//!
//! Partials are stored in pattern blocks of [`TILE`] sites: element
//! `(pattern i, rate c, state s)` lives at
//!
//! ```text
//! (i / TILE) · n_rates·4·TILE  +  (c·4 + s) · TILE  +  i % TILE
//! ```
//!
//! so the values of `TILE` consecutive patterns for one `(c, s)` are
//! contiguous. A `W`-lane kernel (`W ∈ {1, 2, 4, 8}`) then advances `W`
//! *patterns* per iteration with plain contiguous loads — no shuffles —
//! and every lane performs the exact scalar operation sequence for its
//! pattern. Because IEEE-754 addition and multiplication are lane-local
//! and the per-pattern association never changes, all four kernel widths
//! are bit-identical, including the §5.2.3 underflow-scaling conditional,
//! which is always evaluated per pattern (per lane).
//!
//! Buffers are padded to a whole number of blocks; padding lanes are
//! written as zeros so buffer-level bit comparisons stay deterministic.
//! Per-pattern metadata (scale counts, tip codes, weights) stays unpadded.

use super::{KernelKind, ScalingCheck, LN_SCALE, SCALE_MULTIPLIER, SCALE_THRESHOLD, TILE};
use crate::alphabet::TIP_LIKELIHOODS;

/// A 4×4 transition-probability matrix, row-major (`m[from][to]`).
pub type Mat4 = [[f64; 4]; 4];

/// Per-rate tip lookup table: `table[code][state] = Σ_t P[state][t] · tip(code)[t]`.
pub type TipTable16 = [[f64; 4]; 16];

/// Number of `f64`s in a tiled partial buffer covering `n_patterns` sites:
/// the pattern count rounded up to whole [`TILE`] blocks, times the
/// `n_rates × 4` states per pattern.
pub fn tiled_len(n_patterns: usize, n_rates: usize) -> usize {
    n_patterns.div_ceil(TILE) * TILE * n_rates * 4
}

/// Flat index of `(pattern, rate, state)` in the tiled layout.
#[inline(always)]
pub fn tiled_index(pattern: usize, rate: usize, state: usize, n_rates: usize) -> usize {
    (pattern / TILE) * n_rates * 4 * TILE + (rate * 4 + state) * TILE + pattern % TILE
}

/// Convert a `[pattern][rate][state]` AoS partial vector into the tiled
/// layout (padding lanes zeroed). Test/bench helper; the engine builds
/// partials tiled in place.
pub fn tile_partials(aos: &[f64], n_patterns: usize, n_rates: usize) -> Vec<f64> {
    assert_eq!(aos.len(), n_patterns * n_rates * 4);
    let mut out = vec![0.0; tiled_len(n_patterns, n_rates)];
    for i in 0..n_patterns {
        for c in 0..n_rates {
            for s in 0..4 {
                out[tiled_index(i, c, s, n_rates)] = aos[(i * n_rates + c) * 4 + s];
            }
        }
    }
    out
}

/// Precompute the tip lookup tables for a branch (one per rate category).
pub fn build_tip_tables(pmats: &[Mat4]) -> Vec<TipTable16> {
    let mut out = Vec::new();
    build_tip_tables_into(pmats, &mut out);
    out
}

/// As [`build_tip_tables`], writing into a caller-owned buffer (resized to
/// `pmats.len()`) so the steady-state hot path allocates nothing.
pub fn build_tip_tables_into(pmats: &[Mat4], out: &mut Vec<TipTable16>) {
    out.resize(pmats.len(), [[0.0; 4]; 16]);
    for (p, table) in pmats.iter().zip(out.iter_mut()) {
        for (code, row) in table.iter_mut().enumerate() {
            for s in 0..4 {
                let mut acc = 0.0;
                for t in 0..4 {
                    acc += p[s][t] * TIP_LIKELIHOODS[code][t];
                }
                row[s] = acc;
            }
        }
    }
}

/// One `newview` child operand.
pub enum Child<'a> {
    /// A tip: encoded pattern codes and the per-rate lookup tables built by
    /// [`build_tip_tables`] for the child branch.
    Tip { codes: &'a [u8], tables: &'a [TipTable16] },
    /// An inner node: its tiled partial vector (see the module docs for the
    /// layout; length [`tiled_len`]), per-pattern scale counts, and the
    /// per-rate `P` matrices of the child branch.
    Inner { x: &'a [f64], scale: &'a [u32], pmats: &'a [Mat4] },
}

impl Child<'_> {
    fn is_tip(&self) -> bool {
        matches!(self, Child::Tip { .. })
    }
}

/// Scaling statistics returned by a `newview` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaleStats {
    /// Number of scaling conditionals executed (one per pattern per rate).
    pub checks: u64,
    /// Number of patterns actually rescaled.
    pub fired: u64,
}

impl ScaleStats {
    pub fn merge(self, other: ScaleStats) -> ScaleStats {
        ScaleStats { checks: self.checks + other.checks, fired: self.fired + other.fired }
    }
}

#[inline(always)]
fn all_below_threshold_float(v: &[f64]) -> bool {
    // The paper's original conditional: ABS(x) < minlikelihood, one branchy
    // comparison per entry.
    v.iter().all(|&x| x.abs() < SCALE_THRESHOLD)
}

const THRESHOLD_BITS: u64 = 0x2FF0_0000_0000_0000; // (2^-256).to_bits()
const ABS_MASK: u64 = 0x7FFF_FFFF_FFFF_FFFF;

#[inline(always)]
fn all_below_threshold_int(v: &[f64]) -> bool {
    // §5.2.3: clear the sign bit with a logical AND (the spu_and trick),
    // then compare the bit patterns as unsigned integers. For IEEE-754
    // doubles of equal sign this ordering matches the numeric ordering.
    // Written branch-free over the whole slice.
    let mut below = true;
    for &x in v {
        below &= (x.to_bits() & ABS_MASK) < THRESHOLD_BITS;
    }
    below
}

/// Evaluate the §5.2.3 underflow-scaling conditional for one pattern (one
/// lane of a tile): gather its `n_rates × 4` values from the block, and if
/// every one is below threshold multiply them by 2²⁵⁶ in place (an exact
/// power-of-two shift, so rescaling is bit-neutral to the likelihood).
/// Returns `(checks, fired)`. The conditional is per-pattern regardless of
/// kernel width, which is what keeps every width's `ScaleStats` identical.
#[inline]
fn check_and_scale_lane(
    block: &mut [f64],
    lane: usize,
    n_rates: usize,
    scaling: ScalingCheck,
) -> (u32, bool) {
    let mut fire = true;
    for c in 0..n_rates {
        let q = c * 4 * TILE + lane;
        let quad = [block[q], block[q + TILE], block[q + 2 * TILE], block[q + 3 * TILE]];
        let below = match scaling {
            ScalingCheck::FloatCompare => all_below_threshold_float(&quad),
            ScalingCheck::IntegerCast => all_below_threshold_int(&quad),
        };
        fire &= below;
    }
    if fire {
        for c in 0..n_rates {
            for s in 0..4 {
                block[(c * 4 + s) * TILE + lane] *= SCALE_MULTIPLIER;
            }
        }
    }
    (n_rates as u32, fire)
}

// ---------------------------------------------------------------------------
// Lane-generic vector helpers. `W = 2` mirrors the SPE's 128-bit registers
// (paper Figure 2); `W = 4` and `W = 8` are the AVX2/AVX-512-width forms.
// All arithmetic is lane-local two-operand mul/add — never `mul_add`, which
// would round differently from the scalar sequence.
// ---------------------------------------------------------------------------

/// `spu_splats`: replicate a scalar into all `W` lanes.
#[inline(always)]
fn wsplat<const W: usize>(x: f64) -> [f64; W] {
    [x; W]
}

/// Lane-wise multiply.
#[inline(always)]
fn wmul<const W: usize>(a: [f64; W], b: [f64; W]) -> [f64; W] {
    std::array::from_fn(|j| a[j] * b[j])
}

/// `spu_madd`: lane-wise multiply-add `a·b + c` as two rounded operations.
#[inline(always)]
fn wmadd<const W: usize>(a: [f64; W], b: [f64; W], c: [f64; W]) -> [f64; W] {
    std::array::from_fn(|j| a[j] * b[j] + c[j])
}

/// Load `W` consecutive lanes starting at `off`.
#[inline(always)]
fn wload<const W: usize>(b: &[f64], off: usize) -> [f64; W] {
    std::array::from_fn(|j| b[off + j])
}

/// Store `W` consecutive lanes starting at `off`.
#[inline(always)]
fn wstore<const W: usize>(b: &mut [f64], off: usize, v: [f64; W]) {
    b[off..off + W].copy_from_slice(&v);
}

// ---------------------------------------------------------------------------
// newview
// ---------------------------------------------------------------------------

/// Compute one `newview` over all patterns in the supplied (pre-sliced)
/// buffers. `out_x` is a tiled buffer of [`tiled_len`] entries; `out_scale`
/// has one entry per pattern. Pattern counts of all operands must agree.
pub fn newview(
    left: &Child<'_>,
    right: &Child<'_>,
    out_x: &mut [f64],
    out_scale: &mut [u32],
    n_rates: usize,
    kind: KernelKind,
    scaling: ScalingCheck,
) -> ScaleStats {
    let n_patterns = out_scale.len();
    assert_eq!(out_x.len(), tiled_len(n_patterns, n_rates), "output buffer size mismatch");

    // Normalize so a tip operand, if any, is on the left: the math is
    // symmetric and this halves the number of specialized paths, exactly as
    // RAxML canonicalizes its cases.
    let (a, b) = if !left.is_tip() && right.is_tip() { (right, left) } else { (left, right) };

    match (a, b) {
        (Child::Tip { codes: lc, tables: lt }, Child::Tip { codes: rc, tables: rt }) => {
            assert_eq!(lc.len(), n_patterns);
            assert_eq!(rc.len(), n_patterns);
            match kind {
                KernelKind::Scalar => {
                    newview_tip_tip::<1>(lc, lt, rc, rt, out_x, out_scale, n_rates, scaling)
                }
                KernelKind::Vector => {
                    newview_tip_tip::<2>(lc, lt, rc, rt, out_x, out_scale, n_rates, scaling)
                }
                KernelKind::Wide4 => {
                    newview_tip_tip::<4>(lc, lt, rc, rt, out_x, out_scale, n_rates, scaling)
                }
                KernelKind::Wide8 => {
                    newview_tip_tip::<8>(lc, lt, rc, rt, out_x, out_scale, n_rates, scaling)
                }
            }
        }
        (Child::Tip { codes: lc, tables: lt }, Child::Inner { x: rx, scale: rs, pmats: rp }) => {
            assert_eq!(lc.len(), n_patterns);
            assert_eq!(rx.len(), tiled_len(n_patterns, n_rates));
            match kind {
                KernelKind::Scalar => {
                    newview_tip_inner::<1>(lc, lt, rx, rs, rp, out_x, out_scale, n_rates, scaling)
                }
                KernelKind::Vector => {
                    newview_tip_inner::<2>(lc, lt, rx, rs, rp, out_x, out_scale, n_rates, scaling)
                }
                KernelKind::Wide4 => {
                    newview_tip_inner::<4>(lc, lt, rx, rs, rp, out_x, out_scale, n_rates, scaling)
                }
                KernelKind::Wide8 => {
                    newview_tip_inner::<8>(lc, lt, rx, rs, rp, out_x, out_scale, n_rates, scaling)
                }
            }
        }
        (
            Child::Inner { x: lx, scale: ls, pmats: lp },
            Child::Inner { x: rx, scale: rs, pmats: rp },
        ) => {
            assert_eq!(lx.len(), tiled_len(n_patterns, n_rates));
            assert_eq!(rx.len(), tiled_len(n_patterns, n_rates));
            match kind {
                KernelKind::Scalar => newview_inner_inner::<1>(
                    lx, ls, lp, rx, rs, rp, out_x, out_scale, n_rates, scaling,
                ),
                KernelKind::Vector => newview_inner_inner::<2>(
                    lx, ls, lp, rx, rs, rp, out_x, out_scale, n_rates, scaling,
                ),
                KernelKind::Wide4 => newview_inner_inner::<4>(
                    lx, ls, lp, rx, rs, rp, out_x, out_scale, n_rates, scaling,
                ),
                KernelKind::Wide8 => newview_inner_inner::<8>(
                    lx, ls, lp, rx, rs, rp, out_x, out_scale, n_rates, scaling,
                ),
            }
        }
        _ => unreachable!("tip operand is always normalized to the left"),
    }
}

/// Shared per-block epilogue: zero the padding lanes (so buffer-level bit
/// comparisons are deterministic), then run the per-pattern scaling
/// conditional and fold the children's scale counts into `out_scale`.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal epilogue; args mirror newview's
fn finish_block(
    ob: &mut [f64],
    out_scale: &mut [u32],
    base: usize,
    valid: usize,
    n_rates: usize,
    scaling: ScalingCheck,
    stats: &mut ScaleStats,
    child_scale: impl Fn(usize) -> u32,
) {
    for c in 0..n_rates {
        for s in 0..4 {
            for pad in valid..TILE {
                ob[(c * 4 + s) * TILE + pad] = 0.0;
            }
        }
    }
    for lane in 0..valid {
        let i = base + lane;
        let (checks, fired) = check_and_scale_lane(ob, lane, n_rates, scaling);
        stats.checks += checks as u64;
        stats.fired += fired as u64;
        out_scale[i] = child_scale(i) + fired as u32;
    }
}

#[allow(clippy::too_many_arguments)]
fn newview_tip_tip<const W: usize>(
    lc: &[u8],
    lt: &[TipTable16],
    rc: &[u8],
    rt: &[TipTable16],
    out_x: &mut [f64],
    out_scale: &mut [u32],
    n_rates: usize,
    scaling: ScalingCheck,
) -> ScaleStats {
    let n_patterns = out_scale.len();
    let bs = n_rates * 4 * TILE;
    let mut stats = ScaleStats::default();
    for (blk, ob) in out_x.chunks_exact_mut(bs).enumerate() {
        let base = blk * TILE;
        let valid = TILE.min(n_patterns - base);
        let mut l = 0;
        while l + W <= valid {
            tip_tip_group::<W>(lc, lt, rc, rt, ob, base, l);
            l += W;
        }
        while l < valid {
            tip_tip_group::<1>(lc, lt, rc, rt, ob, base, l);
            l += 1;
        }
        finish_block(ob, out_scale, base, valid, n_rates, scaling, &mut stats, |_| 0);
    }
    stats
}

#[allow(clippy::too_many_arguments)]
fn newview_tip_inner<const W: usize>(
    lc: &[u8],
    lt: &[TipTable16],
    rx: &[f64],
    rs: &[u32],
    rp: &[Mat4],
    out_x: &mut [f64],
    out_scale: &mut [u32],
    n_rates: usize,
    scaling: ScalingCheck,
) -> ScaleStats {
    let n_patterns = out_scale.len();
    let bs = n_rates * 4 * TILE;
    let mut stats = ScaleStats::default();
    for (blk, ob) in out_x.chunks_exact_mut(bs).enumerate() {
        let base = blk * TILE;
        let valid = TILE.min(n_patterns - base);
        let rb = &rx[blk * bs..(blk + 1) * bs];
        let mut l = 0;
        while l + W <= valid {
            tip_inner_group::<W>(lc, lt, rb, rp, ob, base, l);
            l += W;
        }
        while l < valid {
            tip_inner_group::<1>(lc, lt, rb, rp, ob, base, l);
            l += 1;
        }
        finish_block(ob, out_scale, base, valid, n_rates, scaling, &mut stats, |i| rs[i]);
    }
    stats
}

#[allow(clippy::too_many_arguments)]
fn newview_inner_inner<const W: usize>(
    lx: &[f64],
    ls: &[u32],
    lp: &[Mat4],
    rx: &[f64],
    rs: &[u32],
    rp: &[Mat4],
    out_x: &mut [f64],
    out_scale: &mut [u32],
    n_rates: usize,
    scaling: ScalingCheck,
) -> ScaleStats {
    let n_patterns = out_scale.len();
    let bs = n_rates * 4 * TILE;
    let mut stats = ScaleStats::default();
    for (blk, ob) in out_x.chunks_exact_mut(bs).enumerate() {
        let base = blk * TILE;
        let valid = TILE.min(n_patterns - base);
        let lb = &lx[blk * bs..(blk + 1) * bs];
        let rb = &rx[blk * bs..(blk + 1) * bs];
        let mut l = 0;
        while l + W <= valid {
            inner_inner_group::<W>(lb, lp, rb, rp, ob, l);
            l += W;
        }
        while l < valid {
            inner_inner_group::<1>(lb, lp, rb, rp, ob, l);
            l += 1;
        }
        finish_block(ob, out_scale, base, valid, n_rates, scaling, &mut stats, |i| ls[i] + rs[i]);
    }
    stats
}

/// `W` patterns of one tip/tip block: per rate and state, a gather of the
/// two lookup rows and one lane-wise multiply.
#[inline(always)]
fn tip_tip_group<const W: usize>(
    lc: &[u8],
    lt: &[TipTable16],
    rc: &[u8],
    rt: &[TipTable16],
    ob: &mut [f64],
    base: usize,
    l0: usize,
) {
    for (c, (ltab, rtab)) in lt.iter().zip(rt).enumerate() {
        let q = c * 4 * TILE;
        for s in 0..4 {
            let lv: [f64; W] = std::array::from_fn(|j| ltab[lc[base + l0 + j] as usize][s]);
            let rv: [f64; W] = std::array::from_fn(|j| rtab[rc[base + l0 + j] as usize][s]);
            wstore(ob, q + s * TILE + l0, wmul(lv, rv));
        }
    }
}

/// `W` patterns of one tip/inner block: the inner child's dot products come
/// from contiguous tile loads; the tip contribution is a lookup gather.
#[inline(always)]
fn tip_inner_group<const W: usize>(
    lc: &[u8],
    lt: &[TipTable16],
    rb: &[f64],
    rp: &[Mat4],
    ob: &mut [f64],
    base: usize,
    l0: usize,
) {
    for (c, (ltab, p)) in lt.iter().zip(rp).enumerate() {
        let q = c * 4 * TILE;
        let b: [[f64; W]; 4] = std::array::from_fn(|t| wload(rb, q + t * TILE + l0));
        for s in 0..4 {
            let lv: [f64; W] = std::array::from_fn(|j| ltab[lc[base + l0 + j] as usize][s]);
            let mut ra = wmul(wsplat::<W>(p[s][0]), b[0]);
            ra = wmadd(wsplat::<W>(p[s][1]), b[1], ra);
            ra = wmadd(wsplat::<W>(p[s][2]), b[2], ra);
            ra = wmadd(wsplat::<W>(p[s][3]), b[3], ra);
            wstore(ob, q + s * TILE + l0, wmul(lv, ra));
        }
    }
}

/// `W` patterns of one inner/inner block: both children's dot products are
/// contiguous tile loads against splatted matrix entries. Per lane the
/// operation sequence is exactly the scalar one, so every `W` is
/// bit-identical.
#[inline(always)]
fn inner_inner_group<const W: usize>(
    lb: &[f64],
    lp: &[Mat4],
    rb: &[f64],
    rp: &[Mat4],
    ob: &mut [f64],
    l0: usize,
) {
    for (c, (pl, pr)) in lp.iter().zip(rp).enumerate() {
        let q = c * 4 * TILE;
        let a: [[f64; W]; 4] = std::array::from_fn(|t| wload(lb, q + t * TILE + l0));
        let b: [[f64; W]; 4] = std::array::from_fn(|t| wload(rb, q + t * TILE + l0));
        for s in 0..4 {
            let mut la = wmul(wsplat::<W>(pl[s][0]), a[0]);
            la = wmadd(wsplat::<W>(pl[s][1]), a[1], la);
            la = wmadd(wsplat::<W>(pl[s][2]), a[2], la);
            la = wmadd(wsplat::<W>(pl[s][3]), a[3], la);
            let mut ra = wmul(wsplat::<W>(pr[s][0]), b[0]);
            ra = wmadd(wsplat::<W>(pr[s][1]), b[1], ra);
            ra = wmadd(wsplat::<W>(pr[s][2]), b[2], ra);
            ra = wmadd(wsplat::<W>(pr[s][3]), b[3], ra);
            wstore(ob, q + s * TILE + l0, wmul(la, ra));
        }
    }
}

// ---------------------------------------------------------------------------
// evaluate
// ---------------------------------------------------------------------------

/// One side of an `evaluate`/`makenewz` branch.
pub enum EvalOperand<'a> {
    /// A tip: its encoded pattern codes.
    Tip { codes: &'a [u8] },
    /// An inner node: tiled partials and per-pattern scale counts.
    Inner { x: &'a [f64], scale: &'a [u32] },
}

impl EvalOperand<'_> {
    fn scale_at(&self, i: usize) -> u32 {
        match self {
            EvalOperand::Tip { .. } => 0,
            EvalOperand::Inner { scale, .. } => scale[i],
        }
    }

    /// The conditional-likelihood 4-vector of pattern `i`, rate `c`.
    #[inline]
    fn quad(&self, i: usize, c: usize, n_rates: usize) -> [f64; 4] {
        match self {
            EvalOperand::Tip { codes } => TIP_LIKELIHOODS[codes[i] as usize],
            EvalOperand::Inner { x, .. } => {
                let off = tiled_index(i, c, 0, n_rates);
                [x[off], x[off + TILE], x[off + 2 * TILE], x[off + 3 * TILE]]
            }
        }
    }
}

/// Log-likelihood at a branch: `Σ_i w_i · ln((1/C) Σ_c x_uᵀ diag(π) P_c x_v)`
/// plus the accumulated scaling corrections.
///
/// The per-site association is the same for every [`KernelKind`] — kernels
/// vary only in how many *patterns* they advance per iteration — so the
/// result is bit-identical across kinds (the `kind` parameter is kept for
/// configuration plumbing and ablation symmetry).
pub fn evaluate_lnl(
    u: &EvalOperand<'_>,
    v: &EvalOperand<'_>,
    pmats: &[Mat4],
    freqs: &[f64; 4],
    weights: &[f64],
    n_rates: usize,
    kind: KernelKind,
) -> f64 {
    let _ = kind;
    let n_patterns = weights.len();
    let inv_c = 1.0 / n_rates as f64;
    let mut lnl = 0.0;
    for i in 0..n_patterns {
        if weights[i] == 0.0 {
            continue; // bootstrap replicates zero-out unsampled patterns
        }
        let mut site = 0.0;
        for (c, p) in pmats.iter().enumerate() {
            let xu = u.quad(i, c, n_rates);
            let xv = v.quad(i, c, n_rates);
            site += eval_site(&xu, &xv, p, freqs);
        }
        site *= inv_c;
        let scale = (u.scale_at(i) + v.scale_at(i)) as f64;
        lnl += weights[i] * (site.max(1e-300).ln() + scale * LN_SCALE);
    }
    lnl
}

/// Per-pattern log-likelihoods at a branch (unweighted): the same
/// computation as [`evaluate_lnl`], reported per site pattern. Used for
/// per-site rate estimation (the CAT model) and diagnostics.
pub fn evaluate_site_lnls(
    u: &EvalOperand<'_>,
    v: &EvalOperand<'_>,
    pmats: &[Mat4],
    freqs: &[f64; 4],
    n_patterns: usize,
    n_rates: usize,
    kind: KernelKind,
) -> Vec<f64> {
    let _ = kind;
    let inv_c = 1.0 / n_rates as f64;
    let mut out = Vec::with_capacity(n_patterns);
    for i in 0..n_patterns {
        let mut site = 0.0;
        for (c, p) in pmats.iter().enumerate() {
            let xu = u.quad(i, c, n_rates);
            let xv = v.quad(i, c, n_rates);
            site += eval_site(&xu, &xv, p, freqs);
        }
        site *= inv_c;
        let scale = (u.scale_at(i) + v.scale_at(i)) as f64;
        out.push(site.max(1e-300).ln() + scale * LN_SCALE);
    }
    out
}

#[inline]
fn eval_site(xu: &[f64; 4], xv: &[f64; 4], p: &Mat4, freqs: &[f64; 4]) -> f64 {
    let mut acc = 0.0;
    for s in 0..4 {
        let pv = p[s][0] * xv[0] + p[s][1] * xv[1] + p[s][2] * xv[2] + p[s][3] * xv[3];
        acc += freqs[s] * xu[s] * pv;
    }
    acc
}

// ---------------------------------------------------------------------------
// makenewz (sum table + Newton derivatives)
// ---------------------------------------------------------------------------

/// The `makenewz` sum table: for a branch `(u, v)` and eigensystem `W`, `λ`,
/// `st[i][c][k] = (W x_u)[k] · (W x_v)[k]`, so that the per-site likelihood
/// at branch length `t` is `Σ_k st[i][c][k] · e^{λ_k r_c t}` — making first
/// and second derivatives w.r.t. `t` nearly free. RAxML builds exactly this
/// table once per `makenewz` and iterates Newton on it.
pub struct SumTable {
    /// Layout `[pattern][rate][k]` (unpadded — the table is consumed
    /// pattern-at-a-time by the Newton loop, which never vectorizes across
    /// patterns).
    pub data: Vec<f64>,
    pub n_rates: usize,
    /// Combined (u + v) scale counts — constant offsets that cancel in the
    /// Newton ratio but are kept for exactness checks.
    pub scale: Vec<u32>,
}

/// Build the sum table. `w` is the model's `W = Vᵀ D^{1/2}` matrix.
pub fn build_sumtable(
    u: &EvalOperand<'_>,
    v: &EvalOperand<'_>,
    w: &[[f64; 4]; 4],
    n_patterns: usize,
    n_rates: usize,
) -> SumTable {
    let mut data = Vec::new();
    let mut scale = Vec::new();
    build_sumtable_into(u, v, w, n_patterns, n_rates, &mut data, &mut scale);
    SumTable { data, n_rates, scale }
}

/// As [`build_sumtable`], writing into caller-owned buffers (resized to the
/// required lengths) so the steady-state `makenewz` path allocates nothing.
pub fn build_sumtable_into(
    u: &EvalOperand<'_>,
    v: &EvalOperand<'_>,
    w: &[[f64; 4]; 4],
    n_patterns: usize,
    n_rates: usize,
    data: &mut Vec<f64>,
    scale: &mut Vec<u32>,
) {
    // Precompute W·tip(code) for all 16 codes (tips are rate-independent).
    let mut wtip = [[0.0f64; 4]; 16];
    for code in 0..16 {
        for k in 0..4 {
            let mut acc = 0.0;
            for s in 0..4 {
                acc += w[k][s] * TIP_LIKELIHOODS[code][s];
            }
            wtip[code][k] = acc;
        }
    }
    let wx = |op: &EvalOperand<'_>, i: usize, c: usize| -> [f64; 4] {
        match op {
            EvalOperand::Tip { codes } => wtip[codes[i] as usize],
            EvalOperand::Inner { .. } => {
                let q = op.quad(i, c, n_rates);
                let mut out = [0.0; 4];
                for k in 0..4 {
                    out[k] = w[k][0] * q[0] + w[k][1] * q[1] + w[k][2] * q[2] + w[k][3] * q[3];
                }
                out
            }
        }
    };

    data.resize(n_patterns * n_rates * 4, 0.0);
    scale.resize(n_patterns, 0);
    for i in 0..n_patterns {
        scale[i] = u.scale_at(i) + v.scale_at(i);
        for c in 0..n_rates {
            let wu = wx(u, i, c);
            let wv = wx(v, i, c);
            let off = (i * n_rates + c) * 4;
            for k in 0..4 {
                data[off + k] = wu[k] * wv[k];
            }
        }
    }
}

/// First and second derivatives of the log-likelihood w.r.t. the branch
/// length `t`, plus the log-likelihood itself, evaluated from a sum table.
///
/// Returns `(lnl, d_lnl, dd_lnl)`.
pub fn newton_derivatives(
    st: &SumTable,
    lambdas: &[f64; 4],
    rates: &[f64],
    t: f64,
    weights: &[f64],
    exp_impl: crate::model::ExpImpl,
) -> (f64, f64, f64) {
    newton_derivatives_kind(st, lambdas, rates, t, weights, exp_impl, KernelKind::Scalar)
}

/// As [`newton_derivatives`] with an explicit kernel kind. Since the tiled
/// layout moved vector lanes onto *patterns*, the eigen-sum association is
/// the same (scalar, left-to-right) for every kind, and every kind returns
/// bit-identical derivatives — the precondition for search trajectories
/// being invariant under the kernel switch. The parameter is kept so config
/// plumbing and ablation call sites stay uniform.
#[allow(clippy::too_many_arguments)]
pub fn newton_derivatives_kind(
    st: &SumTable,
    lambdas: &[f64; 4],
    rates: &[f64],
    t: f64,
    weights: &[f64],
    exp_impl: crate::model::ExpImpl,
    kind: KernelKind,
) -> (f64, f64, f64) {
    let mut scratch = NewtonScratch::default();
    newton_derivatives_scratch(
        &st.data,
        &st.scale,
        st.n_rates,
        lambdas,
        rates,
        t,
        weights,
        exp_impl,
        kind,
        &mut scratch,
    )
}

/// Exponential-table scratch for [`newton_derivatives_scratch`]: the three
/// `[rate][k]` tables of the §5.2.2 "small loop" (`e^{λ_k r_c t}` and its
/// `λr`- and `(λr)²`-weighted variants), owned by the caller so repeated
/// Newton iterations allocate nothing.
#[derive(Debug, Default)]
pub struct NewtonScratch {
    e0: Vec<[f64; 4]>,
    e1: Vec<[f64; 4]>,
    e2: Vec<[f64; 4]>,
}

impl NewtonScratch {
    /// Size the tables for `n_rates` categories (capacity is retained).
    pub fn ensure(&mut self, n_rates: usize) {
        self.e0.resize(n_rates, [0.0; 4]);
        self.e1.resize(n_rates, [0.0; 4]);
        self.e2.resize(n_rates, [0.0; 4]);
    }
}

/// As [`newton_derivatives_kind`], operating on raw sum-table slices
/// (layout `[pattern][rate][k]` + per-pattern scale counts) with
/// caller-owned exponential scratch — the zero-allocation form the engine
/// and the parallel dispatcher use.
#[allow(clippy::too_many_arguments)]
pub fn newton_derivatives_scratch(
    st_data: &[f64],
    st_scale: &[u32],
    n_rates: usize,
    lambdas: &[f64; 4],
    rates: &[f64],
    t: f64,
    weights: &[f64],
    exp_impl: crate::model::ExpImpl,
    kind: KernelKind,
    scratch: &mut NewtonScratch,
) -> (f64, f64, f64) {
    let _ = kind;
    let n_patterns = weights.len();
    let inv_c = 1.0 / n_rates as f64;

    // The "small loop": per (rate, eigenvalue) exponentials — 4 × C exp
    // calls per Newton iteration (§5.2.2's hot spot).
    scratch.ensure(n_rates);
    let (e0, e1, e2) = (&mut scratch.e0, &mut scratch.e1, &mut scratch.e2);
    for c in 0..n_rates {
        for k in 0..4 {
            let lr = lambdas[k] * rates[c];
            let e = exp_impl.eval(lr * t);
            e0[c][k] = e;
            e1[c][k] = lr * e;
            e2[c][k] = lr * lr * e;
        }
    }

    let mut lnl = 0.0;
    let mut d1 = 0.0;
    let mut d2 = 0.0;
    for i in 0..n_patterns {
        let wgt = weights[i];
        if wgt == 0.0 {
            continue;
        }
        let mut li = 0.0;
        let mut dli = 0.0;
        let mut ddli = 0.0;
        for c in 0..n_rates {
            let off = (i * n_rates + c) * 4;
            let s = &st_data[off..off + 4];
            li += s[0] * e0[c][0] + s[1] * e0[c][1] + s[2] * e0[c][2] + s[3] * e0[c][3];
            dli += s[0] * e1[c][0] + s[1] * e1[c][1] + s[2] * e1[c][2] + s[3] * e1[c][3];
            ddli += s[0] * e2[c][0] + s[1] * e2[c][1] + s[2] * e2[c][2] + s[3] * e2[c][3];
        }
        li *= inv_c;
        dli *= inv_c;
        ddli *= inv_c;
        let li_safe = li.max(1e-300);
        lnl += wgt * (li_safe.ln() + st_scale[i] as f64 * LN_SCALE);
        d1 += wgt * (dli / li_safe);
        d2 += wgt * ((ddli * li_safe - dli * dli) / (li_safe * li_safe));
    }
    (lnl, d1, d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ExpImpl, SubstModel};

    fn pmats(model: &SubstModel, t: f64, rates: &[f64]) -> Vec<Mat4> {
        rates.iter().map(|&r| model.transition_matrix(t, r, ExpImpl::Libm)).collect()
    }

    fn model() -> SubstModel {
        SubstModel::gtr([0.3, 0.2, 0.25, 0.25], [1.2, 3.1, 0.8, 0.9, 3.4, 1.0]).unwrap()
    }

    const ALL_KINDS: [KernelKind; 4] =
        [KernelKind::Scalar, KernelKind::Vector, KernelKind::Wide4, KernelKind::Wide8];

    #[test]
    fn tip_tables_match_direct_sum() {
        let m = model();
        let p = pmats(&m, 0.2, &[0.5, 1.5]);
        let tables = build_tip_tables(&p);
        for c in 0..2 {
            for code in 0..16usize {
                for s in 0..4 {
                    let direct: f64 = (0..4).map(|t| p[c][s][t] * TIP_LIKELIHOODS[code][t]).sum();
                    assert!((tables[c][code][s] - direct).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn tiled_index_round_trips() {
        let n_rates = 3;
        let n = 21; // not a multiple of TILE — exercises the tail block
        let aos: Vec<f64> = (0..n * n_rates * 4).map(|i| i as f64).collect();
        let tiled = tile_partials(&aos, n, n_rates);
        assert_eq!(tiled.len(), tiled_len(n, n_rates));
        for i in 0..n {
            for c in 0..n_rates {
                for s in 0..4 {
                    assert_eq!(
                        tiled[tiled_index(i, c, s, n_rates)],
                        aos[(i * n_rates + c) * 4 + s]
                    );
                }
            }
        }
        // Padding lanes are zero.
        let block = (n / TILE) * n_rates * 4 * TILE;
        for c in 0..n_rates {
            for s in 0..4 {
                for pad in (n % TILE)..TILE {
                    assert_eq!(tiled[block + (c * 4 + s) * TILE + pad], 0.0);
                }
            }
        }
    }

    /// Replace a tip operand with an equivalent inner operand whose partial
    /// is the raw tip vector; newview must produce identical results.
    #[test]
    fn tip_paths_agree_with_inner_path() {
        let m = model();
        let rates = [0.3, 1.0, 2.2];
        let n_rates = rates.len();
        let pl = pmats(&m, 0.17, &rates);
        let pr = pmats(&m, 0.42, &rates);
        let lt = build_tip_tables(&pl);
        let rt = build_tip_tables(&pr);

        let codes_l: Vec<u8> = vec![1, 2, 4, 8, 5, 15, 3, 10, 12];
        let codes_r: Vec<u8> = vec![8, 8, 1, 2, 15, 4, 7, 1, 9];
        let n = codes_l.len();

        // Fake "inner" operands replicating the tip vectors per rate.
        let expand = |codes: &[u8]| -> Vec<f64> {
            let mut x = vec![0.0; n * n_rates * 4];
            for i in 0..n {
                for c in 0..n_rates {
                    for s in 0..4 {
                        x[(i * n_rates + c) * 4 + s] = TIP_LIKELIHOODS[codes[i] as usize][s];
                    }
                }
            }
            tile_partials(&x, n, n_rates)
        };
        let xl = expand(&codes_l);
        let xr = expand(&codes_r);
        let zeros = vec![0u32; n];

        let mut out_tt = vec![0.0; tiled_len(n, n_rates)];
        let mut sc_tt = vec![0u32; n];
        newview(
            &Child::Tip { codes: &codes_l, tables: &lt },
            &Child::Tip { codes: &codes_r, tables: &rt },
            &mut out_tt,
            &mut sc_tt,
            n_rates,
            KernelKind::Scalar,
            ScalingCheck::IntegerCast,
        );

        let mut out_ii = vec![0.0; tiled_len(n, n_rates)];
        let mut sc_ii = vec![0u32; n];
        newview(
            &Child::Inner { x: &xl, scale: &zeros, pmats: &pl },
            &Child::Inner { x: &xr, scale: &zeros, pmats: &pr },
            &mut out_ii,
            &mut sc_ii,
            n_rates,
            KernelKind::Scalar,
            ScalingCheck::IntegerCast,
        );

        let mut out_ti = vec![0.0; tiled_len(n, n_rates)];
        let mut sc_ti = vec![0u32; n];
        newview(
            &Child::Tip { codes: &codes_l, tables: &lt },
            &Child::Inner { x: &xr, scale: &zeros, pmats: &pr },
            &mut out_ti,
            &mut sc_ti,
            n_rates,
            KernelKind::Scalar,
            ScalingCheck::IntegerCast,
        );

        for (a, b) in out_tt.iter().zip(&out_ii) {
            assert!((a - b).abs() < 1e-14, "{a} vs {b}");
        }
        for (a, b) in out_ti.iter().zip(&out_ii) {
            assert!((a - b).abs() < 1e-14, "{a} vs {b}");
        }
        assert_eq!(sc_tt, sc_ii);
        assert_eq!(sc_ti, sc_ii);
    }

    #[test]
    fn all_kernel_widths_bit_equal_to_scalar() {
        let m = model();
        let rates = [0.25, 0.8, 1.3, 2.7];
        let n_rates = rates.len();
        let pl = pmats(&m, 0.11, &rates);
        let pr = pmats(&m, 0.29, &rates);
        let lt = build_tip_tables(&pl);
        let rt = build_tip_tables(&pr);
        // 13 patterns: one full block plus a 5-lane tail, so every width
        // exercises its remainder path.
        let n = 13;

        // Deterministic pseudo-random partials.
        let mut x = 0.123456789f64;
        let mut next = || {
            x = (x * 9301.0 + 49297.0) % 233280.0 / 233280.0;
            0.01 + x
        };
        let aos_l: Vec<f64> = (0..n * n_rates * 4).map(|_| next()).collect();
        let aos_r: Vec<f64> = (0..n * n_rates * 4).map(|_| next()).collect();
        let xl = tile_partials(&aos_l, n, n_rates);
        let xr = tile_partials(&aos_r, n, n_rates);
        let zeros = vec![0u32; n];
        let codes: Vec<u8> = (0..n).map(|i| ((i % 15) + 1) as u8).collect();

        let cases: Vec<(Child, Child)> = vec![
            (Child::Tip { codes: &codes, tables: &lt }, Child::Tip { codes: &codes, tables: &rt }),
            (
                Child::Tip { codes: &codes, tables: &lt },
                Child::Inner { x: &xr, scale: &zeros, pmats: &pr },
            ),
            (
                Child::Inner { x: &xl, scale: &zeros, pmats: &pl },
                Child::Inner { x: &xr, scale: &zeros, pmats: &pr },
            ),
        ];
        for (a, b) in &cases {
            let mut out_s = vec![0.0; tiled_len(n, n_rates)];
            let mut sc_s = vec![0u32; n];
            let stats_s = newview(
                a,
                b,
                &mut out_s,
                &mut sc_s,
                n_rates,
                KernelKind::Scalar,
                ScalingCheck::IntegerCast,
            );
            for kind in [KernelKind::Vector, KernelKind::Wide4, KernelKind::Wide8] {
                let mut out_w = vec![0.0; tiled_len(n, n_rates)];
                let mut sc_w = vec![0u32; n];
                let stats_w =
                    newview(a, b, &mut out_w, &mut sc_w, n_rates, kind, ScalingCheck::IntegerCast);
                assert_eq!(out_s, out_w, "{kind:?} kernel must be bit-equal to scalar");
                assert_eq!(sc_s, sc_w);
                assert_eq!(stats_s, stats_w, "{kind:?} ScaleStats must match scalar");
            }
        }
    }

    #[test]
    fn scaling_fires_and_preserves_likelihood_meaning() {
        let m = model();
        let rates = [1.0];
        let pl = pmats(&m, 0.1, &rates);
        let pr = pmats(&m, 0.1, &rates);
        // Inner children with very small partials force a scaling event.
        let tiny = SCALE_THRESHOLD * 1e-3;
        let xl = tile_partials(&[tiny; 4], 1, 1);
        let xr = tile_partials(&[tiny; 4], 1, 1);
        let ls = vec![3u32];
        let rs = vec![5u32];
        for kind in ALL_KINDS {
            let mut out = vec![0.0; tiled_len(1, 1)];
            let mut sc = vec![0u32; 1];
            let stats = newview(
                &Child::Inner { x: &xl, scale: &ls, pmats: &pl },
                &Child::Inner { x: &xr, scale: &rs, pmats: &pr },
                &mut out,
                &mut sc,
                1,
                kind,
                ScalingCheck::IntegerCast,
            );
            assert_eq!(stats.fired, 1);
            assert_eq!(sc[0], 3 + 5 + 1, "scale counts must accumulate");
            // The rescaled values must be exactly 2^256 × the raw products.
            for s in 0..4 {
                let la: f64 = (0..4).map(|t| pl[0][s][t] * tiny).sum();
                let ra: f64 = (0..4).map(|t| pr[0][s][t] * tiny).sum();
                assert_eq!(
                    out[tiled_index(0, 0, s, 1)],
                    la * ra * SCALE_MULTIPLIER,
                    "rescale must be an exact power-of-two shift ({kind:?})"
                );
            }
        }
    }

    #[test]
    fn scaling_is_per_lane_in_mixed_blocks() {
        // One block where only some lanes underflow: the conditional must
        // fire for exactly those patterns, for every kernel width.
        let m = model();
        let rates = [1.0];
        let pl = pmats(&m, 0.1, &rates);
        let pr = pmats(&m, 0.1, &rates);
        let n = TILE;
        let tiny = SCALE_THRESHOLD * 1e-3;
        let mut aos = vec![0.5; n * 4];
        for i in [1, 3, 4, 7] {
            for s in 0..4 {
                aos[i * 4 + s] = tiny;
            }
        }
        let xl = tile_partials(&aos, n, 1);
        let xr = tile_partials(&aos, n, 1);
        let zeros = vec![0u32; n];
        let mut reference: Option<(Vec<f64>, Vec<u32>, ScaleStats)> = None;
        for kind in ALL_KINDS {
            let mut out = vec![0.0; tiled_len(n, 1)];
            let mut sc = vec![0u32; n];
            let stats = newview(
                &Child::Inner { x: &xl, scale: &zeros, pmats: &pl },
                &Child::Inner { x: &xr, scale: &zeros, pmats: &pr },
                &mut out,
                &mut sc,
                1,
                kind,
                ScalingCheck::IntegerCast,
            );
            assert_eq!(sc, vec![0, 1, 0, 1, 1, 0, 0, 1], "per-lane firing ({kind:?})");
            assert_eq!(stats.fired, 4);
            match &reference {
                None => reference = Some((out, sc, stats)),
                Some((rx, rsc, rst)) => {
                    assert_eq!(&out, rx, "{kind:?}");
                    assert_eq!(&sc, rsc);
                    assert_eq!(&stats, rst);
                }
            }
        }
    }

    #[test]
    fn float_and_int_scaling_checks_agree() {
        // Exhaustive-ish agreement check across magnitudes, including
        // exactly at the threshold and for negative values.
        let candidates = [
            0.0,
            1e-300,
            SCALE_THRESHOLD / 2.0,
            SCALE_THRESHOLD * 0.999999,
            SCALE_THRESHOLD,
            SCALE_THRESHOLD * 1.000001,
            1e-20,
            0.5,
            1.0,
            -SCALE_THRESHOLD / 2.0,
            -1.0,
        ];
        for &a in &candidates {
            for &b in &candidates {
                let v = [a, b, a, b];
                assert_eq!(
                    all_below_threshold_float(&v),
                    all_below_threshold_int(&v),
                    "disagreement on {v:?}"
                );
            }
        }
    }

    #[test]
    fn evaluate_is_bit_identical_across_kinds() {
        let m = model();
        let rates = [0.5, 1.5];
        let n_rates = 2;
        let p = pmats(&m, 0.31, &rates);
        let n = 6;
        let aos: Vec<f64> = (0..n * n_rates * 4).map(|i| 0.01 + (i % 7) as f64 * 0.1).collect();
        let xv = tile_partials(&aos, n, n_rates);
        let sv = vec![1u32; n];
        let codes: Vec<u8> = vec![1, 2, 4, 8, 15, 5];
        let weights = vec![2.0, 1.0, 1.0, 3.0, 1.0, 2.0];

        let u = EvalOperand::Tip { codes: &codes };
        let v = EvalOperand::Inner { x: &xv, scale: &sv };
        let a = evaluate_lnl(&u, &v, &p, m.freqs(), &weights, n_rates, KernelKind::Scalar);
        for kind in ALL_KINDS {
            let b = evaluate_lnl(&u, &v, &p, m.freqs(), &weights, n_rates, kind);
            assert_eq!(a.to_bits(), b.to_bits(), "{kind:?}: {a} vs {b}");
        }
        assert!(a < 0.0, "log likelihood of probabilities < 1 must be negative");
    }

    #[test]
    fn sumtable_reproduces_evaluate() {
        // lnl from newton_derivatives at the same t must equal evaluate_lnl.
        let m = model();
        let gam = crate::model::GammaRates::standard(0.7).unwrap();
        let rates = gam.rates();
        let n_rates = rates.len();
        let t = 0.23;
        let p = pmats(&m, t, rates);
        let n = 5;
        let aos: Vec<f64> = (0..n * n_rates * 4).map(|i| 0.02 + (i % 5) as f64 * 0.17).collect();
        let xv = tile_partials(&aos, n, n_rates);
        let sv = vec![2u32; n];
        let codes: Vec<u8> = vec![1, 8, 2, 4, 10];
        let weights = vec![1.0, 4.0, 2.0, 1.0, 1.0];

        let u = EvalOperand::Tip { codes: &codes };
        let v = EvalOperand::Inner { x: &xv, scale: &sv };
        let direct = evaluate_lnl(&u, &v, &p, m.freqs(), &weights, n_rates, KernelKind::Scalar);

        let st = build_sumtable(&u, &v, &m.eigen().w, n, n_rates);
        let (lnl, _, _) =
            newton_derivatives(&st, &m.eigen().values, rates, t, &weights, ExpImpl::Libm);
        assert!((lnl - direct).abs() < 1e-9, "{lnl} vs {direct}");
    }

    #[test]
    fn newton_derivatives_match_finite_differences() {
        let m = model();
        let rates = [0.4, 1.6];
        let n = 4;
        let n_rates = 2;
        let aos: Vec<f64> = (0..n * n_rates * 4).map(|i| 0.05 + (i % 3) as f64 * 0.3).collect();
        let xv = tile_partials(&aos, n, n_rates);
        let sv = vec![0u32; n];
        let codes: Vec<u8> = vec![1, 2, 4, 8];
        let weights = vec![1.0, 2.0, 1.0, 1.0];
        let u = EvalOperand::Tip { codes: &codes };
        let v = EvalOperand::Inner { x: &xv, scale: &sv };
        let st = build_sumtable(&u, &v, &m.eigen().w, n, n_rates);

        let t = 0.3;
        let f = |tt: f64| {
            newton_derivatives(&st, &m.eigen().values, &rates, tt, &weights, ExpImpl::Libm).0
        };
        let (_, d1, d2) =
            newton_derivatives(&st, &m.eigen().values, &rates, t, &weights, ExpImpl::Libm);
        // First derivative: small step is fine.
        let h1 = 1e-6;
        let fd1 = (f(t + h1) - f(t - h1)) / (2.0 * h1);
        assert!((d1 - fd1).abs() < 1e-5, "d1 {d1} vs fd {fd1}");
        // Second derivative: the central difference cancels ~16 digits, so
        // use a larger step to keep round-off noise below the tolerance.
        let h2 = 1e-4;
        let fd2 = (f(t + h2) - 2.0 * f(t) + f(t - h2)) / (h2 * h2);
        assert!((d2 - fd2).abs() < 1e-4, "d2 {d2} vs fd {fd2}");
    }

    #[test]
    fn newton_is_bit_identical_across_kinds() {
        let m = model();
        let gam = crate::model::GammaRates::standard(0.5).unwrap();
        let rates = gam.rates().to_vec();
        let n = 9;
        let n_rates = rates.len();
        let aos: Vec<f64> = (0..n * n_rates * 4).map(|i| 0.03 + (i % 11) as f64 * 0.09).collect();
        let xv = tile_partials(&aos, n, n_rates);
        let sv = vec![1u32; n];
        let codes: Vec<u8> = vec![1, 2, 4, 8, 3, 5, 9, 15, 6];
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let u = EvalOperand::Tip { codes: &codes };
        let v = EvalOperand::Inner { x: &xv, scale: &sv };
        let st = build_sumtable(&u, &v, &m.eigen().w, n, n_rates);
        for &t in &[0.01, 0.2, 1.5] {
            let a = newton_derivatives_kind(
                &st,
                &m.eigen().values,
                &rates,
                t,
                &weights,
                ExpImpl::Sdk,
                KernelKind::Scalar,
            );
            for kind in ALL_KINDS {
                let b = newton_derivatives_kind(
                    &st,
                    &m.eigen().values,
                    &rates,
                    t,
                    &weights,
                    ExpImpl::Sdk,
                    kind,
                );
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "lnl: {} vs {} ({kind:?})", a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "d1: {} vs {} ({kind:?})", a.1, b.1);
                assert_eq!(a.2.to_bits(), b.2.to_bits(), "d2: {} vs {} ({kind:?})", a.2, b.2);
            }
        }
    }

    #[test]
    fn site_lnls_sum_to_evaluate() {
        let m = model();
        let rates = [0.5, 1.5];
        let n_rates = 2;
        let p = pmats(&m, 0.27, &rates);
        let n = 7;
        let aos: Vec<f64> = (0..n * n_rates * 4).map(|i| 0.02 + (i % 9) as f64 * 0.11).collect();
        let xv = tile_partials(&aos, n, n_rates);
        let sv = vec![2u32; n];
        let codes: Vec<u8> = vec![1, 8, 2, 4, 10, 15, 5];
        let weights: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let u = EvalOperand::Tip { codes: &codes };
        let v = EvalOperand::Inner { x: &xv, scale: &sv };
        let site = evaluate_site_lnls(&u, &v, &p, m.freqs(), n, n_rates, KernelKind::Vector);
        let total: f64 = site.iter().zip(&weights).map(|(s, w)| s * w).sum();
        let direct = evaluate_lnl(&u, &v, &p, m.freqs(), &weights, n_rates, KernelKind::Vector);
        assert!((total - direct).abs() < 1e-10, "{total} vs {direct}");
    }

    #[test]
    fn zero_weight_patterns_are_skipped() {
        let m = model();
        let p = pmats(&m, 0.2, &[1.0]);
        let codes = vec![1u8, 2];
        let x = tile_partials(&[0.5; 8], 2, 1);
        let s = vec![0u32; 2];
        let u = EvalOperand::Tip { codes: &codes };
        let v = EvalOperand::Inner { x: &x, scale: &s };
        let full = evaluate_lnl(&u, &v, &p, m.freqs(), &[1.0, 1.0], 1, KernelKind::Scalar);
        let half = evaluate_lnl(&u, &v, &p, m.freqs(), &[1.0, 0.0], 1, KernelKind::Scalar);
        assert!(half > full, "dropping a pattern must raise (less negative) lnl");
    }
}
