//! Workspace arenas and traversal descriptors for the likelihood hot path.
//!
//! The paper's SPE kernels work out of a fixed 256 KB local store: buffers
//! are allocated once and work arrives as a stream of descriptors (DMA
//! lists). This module is the host-side analogue — a [`LikelihoodWorkspace`]
//! owns every buffer the three kernels touch (partials, scale vectors,
//! P-matrix scratch, tip tables, Newton sum table and exponential tables,
//! traversal scratch), so that steady-state `newview`/`evaluate`/`makenewz`
//! calls perform **zero heap allocation**, and a tree traversal compiles
//! into an ordered [`TraversalOps`] descriptor list (the BEAGLE
//! operation-array analogue) executed by one kernel driver.
//!
//! Workspaces outlive engines: [`crate::likelihood::engine::LikelihoodEngine::into_workspace`]
//! recovers the arena when an engine is dropped. Arenas are recycled across
//! bootstrap replicates two ways: the [`crate::farm`] inference farm hands
//! each worker a workspace as its per-worker shard (no lock per job), and
//! the lock-per-checkout [`WorkspacePool`] remains for callers that share
//! arenas across ad-hoc threads.

use super::kernels::{tiled_len, Mat4, NewtonScratch, TipTable16};
use crate::tree::NodeId;
use std::sync::Mutex;

/// Engine-level switches for the workspace/dispatch layer, threaded through
/// [`crate::search::SearchConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkspaceOptions {
    /// Execute traversals as one fused [`TraversalOps`] descriptor list
    /// (the default). `false` restores the historical per-node dispatch in
    /// which every `newview` allocates its own scratch — kept as the
    /// baseline the `dispatch` Criterion group measures against.
    pub fused_dispatch: bool,
}

impl Default for WorkspaceOptions {
    fn default() -> WorkspaceOptions {
        WorkspaceOptions { fused_dispatch: true }
    }
}

impl WorkspaceOptions {
    /// The historical per-node dispatch path (fresh scratch per kernel
    /// call).
    pub fn per_node() -> WorkspaceOptions {
        WorkspaceOptions { fused_dispatch: false }
    }
}

/// One `newview` work descriptor: everything the kernel driver needs to
/// recompute the partial at `node` oriented toward `toward`, without
/// consulting the tree again — the analogue of one SPE DMA-list entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalOp {
    /// Inner node whose partial this op (re)computes.
    pub node: NodeId,
    /// Orientation: the partial is valid for the tree rooted so that
    /// `toward` is `node`'s parent.
    pub toward: NodeId,
    /// First child and its branch length.
    pub left: NodeId,
    pub left_len: f64,
    /// Second child and its branch length.
    pub right: NodeId,
    pub right_len: f64,
    /// Whether each child is a tip (selects the specialized kernel path).
    pub left_tip: bool,
    pub right_tip: bool,
}

/// An ordered `newview` descriptor list in execution (bottom-up) order —
/// the BEAGLE operation-array / SPE DMA-list analogue. Compiled once per
/// traversal by the engine, executed by a single kernel driver loop, and
/// exposed so tests and the trace layer can inspect exactly what a
/// traversal dispatched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraversalOps {
    list: Vec<TraversalOp>,
}

impl TraversalOps {
    pub fn len(&self) -> usize {
        self.list.len()
    }

    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Descriptors in execution order (children strictly before parents).
    pub fn as_slice(&self) -> &[TraversalOp] {
        &self.list
    }

    pub fn iter(&self) -> std::slice::Iter<'_, TraversalOp> {
        self.list.iter()
    }

    pub(crate) fn clear(&mut self) {
        self.list.clear();
    }

    pub(crate) fn push(&mut self, op: TraversalOp) {
        self.list.push(op);
    }

    pub(crate) fn get(&self, i: usize) -> TraversalOp {
        self.list[i]
    }

    /// Reverse the tail `[from..]` in place — used by the compiler to turn
    /// a root-first discovery segment into bottom-up execution order.
    pub(crate) fn reverse_from(&mut self, from: usize) {
        self.list[from..].reverse();
    }
}

impl<'a> IntoIterator for &'a TraversalOps {
    type Item = &'a TraversalOp;
    type IntoIter = std::slice::Iter<'a, TraversalOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.list.iter()
    }
}

/// Every buffer the likelihood hot path touches, allocated once and reused
/// across all kernel calls, SPR candidates and (via [`WorkspacePool`])
/// bootstrap replicates. Geometry (`n_taxa`, `n_patterns`, `n_rates`) is
/// re-validated by [`LikelihoodWorkspace::ensure`] whenever an engine
/// adopts the workspace; buffers only grow or shrink in *length*, their
/// capacity is retained, so a recycled workspace reaches its steady state
/// with no new allocations.
#[derive(Debug, Default)]
pub struct LikelihoodWorkspace {
    n_taxa: usize,
    n_patterns: usize,
    n_rates: usize,
    /// Partial vectors per inner node, in the pattern-blocked tiled layout
    /// of [`crate::likelihood::kernels`] (length [`tiled_len`], padded to
    /// whole [`crate::likelihood::TILE`] blocks).
    pub(crate) partials: Vec<Vec<f64>>,
    /// Per-pattern scaling counts per inner node (unpadded).
    pub(crate) scales: Vec<Vec<u32>>,
    /// `orientation[i] = Some(q)`: inner node `n_taxa + i`'s partial is
    /// valid for the tree rooted so that `q` is its parent — provided its
    /// validity generation also matches (see [`Self::cache_gen`]).
    pub(crate) orientation: Vec<Option<NodeId>>,
    /// Validity generation per inner node: the partial at slot `i` is live
    /// only when `valid_gen[i] == cache_gen`. Bumping `cache_gen` is the
    /// O(1) whole-cache invalidation (`invalidate_all`); targeted
    /// invalidation (`invalidate_for_branch`) still clears orientations so
    /// cross-move partial reuse keeps untouched subtrees warm.
    pub(crate) valid_gen: Vec<u64>,
    /// Current cache generation; starts at 1 so a zeroed `valid_gen` is
    /// stale by construction.
    pub(crate) cache_gen: u64,
    /// Per-rate P-matrix scratch for the two `newview` child branches and
    /// for the `evaluate`/`makenewz` branch.
    pub(crate) pmat_a: Vec<Mat4>,
    pub(crate) pmat_b: Vec<Mat4>,
    pub(crate) pmat_eval: Vec<Mat4>,
    /// Tip lookup-table scratch for the two `newview` child branches.
    pub(crate) tip_a: Vec<TipTable16>,
    pub(crate) tip_b: Vec<TipTable16>,
    /// `makenewz` sum table (`[pattern][rate][k]` layout + per-pattern
    /// scale counts).
    pub(crate) sum_data: Vec<f64>,
    pub(crate) sum_scale: Vec<u32>,
    /// Newton exponential tables (the §5.2.2 "small loop" scratch).
    pub(crate) newton: NewtonScratch,
    /// Per-call copy of the rate vector (avoids re-borrowing the rate
    /// model while the sum table is borrowed).
    pub(crate) rates_scratch: Vec<f64>,
    /// The compiled descriptor list of the most recent fused traversal.
    pub(crate) ops: TraversalOps,
    /// DFS stack for traversal compilation: `(node, toward)` pairs.
    pub(crate) visit_stack: Vec<(NodeId, NodeId)>,
    /// Scratch for targeted invalidation (`invalidate_for_branch`).
    pub(crate) hop: Vec<usize>,
    pub(crate) seen: Vec<bool>,
    pub(crate) node_stack: Vec<NodeId>,
}

impl LikelihoodWorkspace {
    /// An empty workspace; buffers materialize on first [`Self::ensure`].
    pub fn new() -> LikelihoodWorkspace {
        LikelihoodWorkspace::default()
    }

    /// A workspace pre-sized for the given problem geometry.
    pub fn for_dimensions(n_taxa: usize, n_patterns: usize, n_rates: usize) -> LikelihoodWorkspace {
        let mut ws = LikelihoodWorkspace::new();
        ws.ensure(n_taxa, n_patterns, n_rates);
        ws
    }

    /// Size every buffer for the given geometry and invalidate all cached
    /// partials. Lengths are set exactly (kernels assert on them); existing
    /// capacity is reused, so re-adopting a workspace of the same or larger
    /// geometry allocates nothing.
    pub fn ensure(&mut self, n_taxa: usize, n_patterns: usize, n_rates: usize) {
        let n_inner = n_taxa.saturating_sub(2);
        let n_nodes = n_taxa + n_inner;
        let stride = n_rates * 4;

        if self.partials.len() > n_inner {
            self.partials.truncate(n_inner);
            self.scales.truncate(n_inner);
        }
        while self.partials.len() < n_inner {
            self.partials.push(Vec::new());
            self.scales.push(Vec::new());
        }
        for p in &mut self.partials {
            p.resize(tiled_len(n_patterns, n_rates), 0.0);
        }
        for s in &mut self.scales {
            s.resize(n_patterns, 0);
        }
        self.orientation.clear();
        self.orientation.resize(n_inner, None);
        self.valid_gen.clear();
        self.valid_gen.resize(n_inner, 0);
        // Generation 0 marks "never computed"; start (or continue) strictly
        // above it so every slot is stale after adoption.
        self.cache_gen = self.cache_gen.max(1);

        self.pmat_a.resize(n_rates, [[0.0; 4]; 4]);
        self.pmat_b.resize(n_rates, [[0.0; 4]; 4]);
        self.pmat_eval.resize(n_rates, [[0.0; 4]; 4]);
        self.tip_a.resize(n_rates, [[0.0; 4]; 16]);
        self.tip_b.resize(n_rates, [[0.0; 4]; 16]);

        self.sum_data.resize(n_patterns * stride, 0.0);
        self.sum_scale.resize(n_patterns, 0);
        self.newton.ensure(n_rates);
        self.rates_scratch.clear();
        self.rates_scratch.reserve(n_rates);

        self.ops.clear();
        // Worst case: every inner node appears once per traversal side.
        self.ops.list.reserve(n_inner);
        self.visit_stack.clear();
        self.visit_stack.reserve(n_inner);

        self.hop.clear();
        self.hop.resize(n_nodes, usize::MAX);
        self.seen.clear();
        self.seen.resize(n_nodes, false);
        self.node_stack.clear();
        self.node_stack.reserve(n_nodes);

        self.n_taxa = n_taxa;
        self.n_patterns = n_patterns;
        self.n_rates = n_rates;
    }

    /// Invalidate every cached partial without touching buffer sizes: an
    /// O(1) generation bump — every slot's `valid_gen` is now stale — plus
    /// clearing the compiled descriptor list.
    pub fn reset(&mut self) {
        self.cache_gen += 1;
        self.ops.clear();
    }

    /// Geometry this workspace is currently sized for:
    /// `(n_taxa, n_patterns, n_rates)`.
    pub fn dimensions(&self) -> (usize, usize, usize) {
        (self.n_taxa, self.n_patterns, self.n_rates)
    }

    /// Bytes held in the partial-likelihood buffers (the dominant term; the
    /// analogue of the paper's local-store budget accounting).
    pub fn partials_bytes(&self) -> usize {
        self.partials.iter().map(|p| p.len() * std::mem::size_of::<f64>()).sum::<usize>()
            + self.scales.iter().map(|s| s.len() * std::mem::size_of::<u32>()).sum::<usize>()
    }
}

/// A thread-safe pool of [`LikelihoodWorkspace`] arenas: threads check a
/// workspace out per job and return it afterwards, so `n_workers` arenas
/// serve any number of bootstrap replicates — instead of every replicate
/// reallocating all partials. The [`crate::farm`] inference farm avoids
/// even the checkout lock by owning one workspace per worker as that
/// worker's shard; the pool remains for ad-hoc sharing across threads.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    slots: Mutex<Vec<LikelihoodWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created on demand at first checkout.
    pub fn new() -> WorkspacePool {
        WorkspacePool::default()
    }

    /// Take a workspace (a recycled one if available, otherwise empty).
    pub fn checkout(&self) -> LikelihoodWorkspace {
        self.slots.lock().expect("workspace pool poisoned").pop().unwrap_or_default()
    }

    /// Return a workspace for reuse.
    pub fn checkin(&self, ws: LikelihoodWorkspace) {
        self.slots.lock().expect("workspace pool poisoned").push(ws);
    }

    /// Number of idle workspaces currently pooled.
    pub fn idle(&self) -> usize {
        self.slots.lock().expect("workspace pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_sets_exact_lengths() {
        let mut ws = LikelihoodWorkspace::new();
        ws.ensure(8, 100, 4);
        assert_eq!(ws.partials.len(), 6);
        // Partials are tiled: 100 patterns pad to 104 (13 blocks of 8).
        assert!(ws.partials.iter().all(|p| p.len() == 104 * 16));
        assert!(ws.scales.iter().all(|s| s.len() == 100));
        assert_eq!(ws.orientation.len(), 6);
        assert_eq!(ws.valid_gen.len(), 6);
        assert!(ws.cache_gen >= 1, "generation 0 is reserved for never-computed slots");
        assert_eq!(ws.pmat_a.len(), 4);
        // The sum table stays unpadded `[pattern][rate][k]`.
        assert_eq!(ws.sum_data.len(), 100 * 16);
        assert_eq!(ws.hop.len(), 14);
        assert_eq!(ws.dimensions(), (8, 100, 4));
    }

    #[test]
    fn reset_is_a_generation_bump() {
        let mut ws = LikelihoodWorkspace::for_dimensions(6, 40, 2);
        let gen_before = ws.cache_gen;
        ws.valid_gen[0] = gen_before; // pretend slot 0 was computed
        ws.reset();
        assert_eq!(ws.cache_gen, gen_before + 1);
        assert!(ws.valid_gen[0] < ws.cache_gen, "all slots stale after reset");
    }

    #[test]
    fn ensure_shrinks_and_regrows_without_losing_shape() {
        let mut ws = LikelihoodWorkspace::for_dimensions(10, 200, 4);
        ws.ensure(5, 50, 2);
        assert_eq!(ws.partials.len(), 3);
        assert!(ws.partials.iter().all(|p| p.len() == 56 * 8)); // 50 pads to 56
        ws.ensure(10, 200, 4);
        assert_eq!(ws.partials.len(), 8);
        assert!(ws.partials.iter().all(|p| p.len() == 200 * 16)); // 200 = 25 blocks exactly
        assert!(ws.orientation.iter().all(|o| o.is_none()));
    }

    #[test]
    fn pool_recycles_workspaces() {
        let pool = WorkspacePool::new();
        assert_eq!(pool.idle(), 0);
        let mut ws = pool.checkout();
        ws.ensure(6, 80, 4);
        let bytes = ws.partials_bytes();
        assert!(bytes > 0);
        pool.checkin(ws);
        assert_eq!(pool.idle(), 1);
        let ws2 = pool.checkout();
        assert_eq!(ws2.partials_bytes(), bytes, "recycled workspace keeps its buffers");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn traversal_ops_reverse_segment() {
        let mk = |node| TraversalOp {
            node,
            toward: 0,
            left: 1,
            left_len: 0.1,
            right: 2,
            right_len: 0.2,
            left_tip: true,
            right_tip: true,
        };
        let mut ops = TraversalOps::default();
        ops.push(mk(10));
        ops.push(mk(11));
        ops.push(mk(12));
        ops.reverse_from(1);
        let order: Vec<_> = ops.iter().map(|o| o.node).collect();
        assert_eq!(order, vec![10, 12, 11]);
        assert_eq!(ops.len(), 3);
        assert!(!ops.is_empty());
    }
}
