//! The likelihood engine: per-node partial buffers, lazy virtual-root
//! traversal (`newview`), branch log-likelihood (`evaluate`) and Newton
//! branch-length optimization (`makenewz`) — the three functions the paper
//! offloads to the Cell SPEs, with the same laziness structure:
//! "`makenewz()` and `evaluate()` initially make calls to `newview()` before
//! they can execute their own computation" (§5.2).
//!
//! All buffers live in a [`LikelihoodWorkspace`] arena owned by the engine:
//! after warm-up, `newview`/`evaluate`/`makenewz` perform **zero heap
//! allocation**. Traversals compile into a [`TraversalOps`] descriptor list
//! executed by one kernel-driver loop ([`WorkspaceOptions::fused_dispatch`],
//! the default); the historical per-node dispatch is retained behind
//! [`WorkspaceOptions::per_node`] as the measured baseline.

use super::kernels::{
    build_sumtable_into, build_tip_tables, build_tip_tables_into, Child, EvalOperand, Mat4,
    TipTable16,
};
use super::workspace::{LikelihoodWorkspace, TraversalOp, TraversalOps, WorkspaceOptions};
use super::LikelihoodConfig;
use crate::alignment::PatternAlignment;
use crate::model::{ExpImpl, GammaRates, SubstModel};
use crate::parallel::{evaluate_dispatch, newton_dispatch, newview_dispatch};
use crate::trace::{CallParent, KernelEvent, KernelOp, Trace};
use crate::tree::{clamp_branch, Edge, NodeId, Tree};

/// Maximum Newton iterations per `makenewz`.
const NEWTON_MAX_ITER: usize = 32;
/// Newton convergence tolerance on the branch length.
const NEWTON_TOL: f64 = 1e-9;

/// Cross-move partial-reuse accounting (the BEAGLE-style ledger): how many
/// subtree roots a traversal found already valid — skipping their entire
/// subtrees — versus how many `newview` descriptors actually executed.
/// Search moves that invalidate narrowly (SPR/NNI targeted bookkeeping)
/// drive `reused` up; an engine that flushed its whole cache per candidate
/// would show `reused == 0` between moves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Traversal entries satisfied by a cached partial (subtree skipped).
    pub partials_reused: u64,
    /// `newview` descriptors executed (partials recomputed).
    pub partials_recomputed: u64,
}

/// Per-rate transition matrices for a branch of length `t`, written into a
/// caller-owned buffer (free function so the workspace can be borrowed
/// mutably while the model/rates fields are read).
fn fill_pmats(model: &SubstModel, rates: &[f64], t: f64, exp_impl: ExpImpl, out: &mut Vec<Mat4>) {
    out.resize(rates.len(), [[0.0; 4]; 4]);
    for (slot, &r) in out.iter_mut().zip(rates) {
        *slot = model.transition_matrix(t, r, exp_impl);
    }
}

/// Evaluate operand for a node, borrowing workspace buffers directly.
fn operand_in<'w>(
    aln: &'w PatternAlignment,
    n_taxa: usize,
    partials: &'w [Vec<f64>],
    scales: &'w [Vec<u32>],
    node: NodeId,
) -> EvalOperand<'w> {
    if node < n_taxa {
        EvalOperand::Tip { codes: aln.tip_row(node) }
    } else {
        EvalOperand::Inner { x: &partials[node - n_taxa], scale: &scales[node - n_taxa] }
    }
}

/// `newview` child operand for a descriptor, borrowing workspace buffers.
#[allow(clippy::too_many_arguments)]
fn child_in<'w>(
    aln: &'w PatternAlignment,
    n_taxa: usize,
    partials: &'w [Vec<f64>],
    scales: &'w [Vec<u32>],
    pmats: &'w [Mat4],
    tables: &'w [TipTable16],
    node: NodeId,
    is_tip: bool,
) -> Child<'w> {
    if is_tip {
        Child::Tip { codes: aln.tip_row(node), tables }
    } else {
        Child::Inner { x: &partials[node - n_taxa], scale: &scales[node - n_taxa], pmats }
    }
}

/// The likelihood engine. One engine serves one alignment + model + tree
/// family; it owns a [`LikelihoodWorkspace`] holding the partial-likelihood
/// buffers for every inner node plus all kernel scratch.
pub struct LikelihoodEngine<'a> {
    aln: &'a PatternAlignment,
    model: SubstModel,
    rates: GammaRates,
    config: LikelihoodConfig,
    options: WorkspaceOptions,
    n_patterns: usize,
    n_rates: usize,
    n_taxa: usize,
    ws: LikelihoodWorkspace,
    trace: Trace,
    reuse: ReuseStats,
    /// Test hook: force the next guarded evaluation to observe a NaN.
    poison_numerics: bool,
}

impl<'a> LikelihoodEngine<'a> {
    /// Create an engine for an alignment, substitution model and rate model
    /// with default workspace options and a fresh arena.
    pub fn new(
        aln: &'a PatternAlignment,
        model: SubstModel,
        rates: GammaRates,
        config: LikelihoodConfig,
    ) -> LikelihoodEngine<'a> {
        LikelihoodEngine::with_workspace(
            aln,
            model,
            rates,
            config,
            WorkspaceOptions::default(),
            LikelihoodWorkspace::new(),
        )
    }

    /// As [`Self::new`] with explicit workspace/dispatch options.
    pub fn with_options(
        aln: &'a PatternAlignment,
        model: SubstModel,
        rates: GammaRates,
        config: LikelihoodConfig,
        options: WorkspaceOptions,
    ) -> LikelihoodEngine<'a> {
        LikelihoodEngine::with_workspace(
            aln,
            model,
            rates,
            config,
            options,
            LikelihoodWorkspace::new(),
        )
    }

    /// Build an engine on top of an existing (possibly recycled) workspace
    /// arena: the arena is resized for this problem's geometry — reusing
    /// its capacity — and all cached partials are invalidated. This is how
    /// pooled workers avoid reallocating buffers per bootstrap replicate.
    pub fn with_workspace(
        aln: &'a PatternAlignment,
        model: SubstModel,
        rates: GammaRates,
        config: LikelihoodConfig,
        options: WorkspaceOptions,
        mut ws: LikelihoodWorkspace,
    ) -> LikelihoodEngine<'a> {
        let n_taxa = aln.n_taxa();
        let n_patterns = aln.n_patterns();
        let n_rates = rates.n_categories();
        ws.ensure(n_taxa, n_patterns, n_rates);
        LikelihoodEngine {
            aln,
            model,
            rates,
            config,
            options,
            n_patterns,
            n_rates,
            n_taxa,
            ws,
            trace: Trace::counters_only(),
            reuse: ReuseStats::default(),
            poison_numerics: false,
        }
    }

    /// Consume the engine, recovering its workspace arena for reuse.
    pub fn into_workspace(self) -> LikelihoodWorkspace {
        self.ws
    }

    /// The alignment this engine evaluates against.
    pub fn alignment(&self) -> &PatternAlignment {
        self.aln
    }

    /// Current substitution model.
    pub fn model(&self) -> &SubstModel {
        &self.model
    }

    /// Current rate model.
    pub fn rates(&self) -> &GammaRates {
        &self.rates
    }

    /// Engine configuration.
    pub fn config(&self) -> &LikelihoodConfig {
        &self.config
    }

    /// Workspace/dispatch options.
    pub fn options(&self) -> WorkspaceOptions {
        self.options
    }

    /// The descriptor list compiled by the most recent fused traversal
    /// (empty before any traversal or when running per-node dispatch).
    pub fn last_traversal(&self) -> &TraversalOps {
        &self.ws.ops
    }

    /// The cached partial vector and scale counts of an inner node, if that
    /// node currently holds a valid partial: `(partial, scales, toward)`.
    /// Tips and stale inner nodes return `None`. Exposed for equivalence
    /// tests between dispatch modes.
    pub fn node_partial(&self, node: NodeId) -> Option<(&[f64], &[u32], NodeId)> {
        if node < self.n_taxa {
            return None;
        }
        let idx = self.inner_idx(node);
        if !self.slot_is_current(idx) {
            return None;
        }
        self.ws.orientation[idx]
            .map(|tw| (self.ws.partials[idx].as_slice(), self.ws.scales[idx].as_slice(), tw))
    }

    /// Cross-move partial-reuse accounting since the last
    /// [`Self::reset_reuse_stats`].
    pub fn reuse_stats(&self) -> ReuseStats {
        self.reuse
    }

    /// Zero the reuse ledger (e.g. at a search-round boundary).
    pub fn reset_reuse_stats(&mut self) {
        self.reuse = ReuseStats::default();
    }

    /// A slot's partial is live only when its validity generation matches
    /// the workspace's current cache generation ([`Self::invalidate_all`]
    /// is an O(1) generation bump rather than an orientation sweep).
    #[inline]
    fn slot_is_current(&self, idx: usize) -> bool {
        self.ws.valid_gen[idx] == self.ws.cache_gen
    }

    /// Replace the substitution model (invalidates all partials).
    pub fn set_model(&mut self, model: SubstModel) {
        self.model = model;
        self.invalidate_all();
    }

    /// Update the Γ shape parameter (invalidates all partials).
    pub fn set_alpha(&mut self, alpha: f64) -> crate::error::Result<()> {
        self.rates.set_alpha(alpha)?;
        self.invalidate_all();
        Ok(())
    }

    /// Access the collected trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Switch to full event recording (for cellsim replay).
    pub fn enable_event_recording(&mut self) {
        self.trace = Trace::recording();
    }

    /// Take the trace, leaving a fresh one with the same recording mode.
    pub fn take_trace(&mut self) -> Trace {
        let fresh =
            if self.trace.is_recording() { Trace::recording() } else { Trace::counters_only() };
        std::mem::replace(&mut self.trace, fresh)
    }

    /// Mark the start of SPR round `round` in the trace (closing any open
    /// round). Kernel invocations issued from here on are attributed to it.
    pub fn begin_spr_round(&mut self, round: u32) {
        self.trace.begin_spr_round(round);
    }

    /// Close the trace's open SPR round mark, if any.
    pub fn end_spr_round(&mut self) {
        self.trace.end_spr_round();
    }

    /// Invalidate every cached partial (call after any topology change).
    pub fn invalidate_all(&mut self) {
        self.ws.reset();
    }

    /// Invalidate exactly the partials whose subtree contains the branch
    /// `(u, v)` — everything except partials oriented *toward* the branch.
    /// Call after changing that branch's length.
    pub fn invalidate_for_branch(&mut self, tree: &Tree, u: NodeId, v: NodeId) {
        let n_nodes = tree.n_nodes();
        let ws = &mut self.ws;
        // First hop from every node toward u (DFS with parent pointers),
        // using workspace scratch so steady-state calls allocate nothing.
        ws.hop.clear();
        ws.hop.resize(n_nodes, usize::MAX);
        ws.seen.clear();
        ws.seen.resize(n_nodes, false);
        ws.node_stack.clear();
        ws.node_stack.push(u);
        ws.seen[u] = true;
        while let Some(x) = ws.node_stack.pop() {
            for (n, _) in tree.neighbors_of(x) {
                if !ws.seen[n] {
                    ws.seen[n] = true;
                    ws.hop[n] = x; // first hop from n toward u is x
                    ws.node_stack.push(n);
                }
            }
        }
        ws.hop[u] = v; // from u, the branch lies toward v

        for inner in self.n_taxa..n_nodes {
            let idx = inner - self.n_taxa;
            // Nodes not connected to the branch (e.g. a pruned subtree)
            // cannot contain it; their caches stay as they are.
            if ws.hop[inner] == usize::MAX && inner != u {
                continue;
            }
            if let Some(q) = ws.orientation[idx] {
                // The partial at `inner` toward q covers the subtree away
                // from q; it contains branch (u,v) unless q is the first hop
                // toward the branch.
                if q != ws.hop[inner] {
                    ws.orientation[idx] = None;
                }
            }
        }
    }

    /// Rename the target of a cached orientation: if `node`'s partial is
    /// valid "toward `from`", mark it valid "toward `to`" instead. Used by
    /// the SPR bookkeeping when a topology edit replaces a neighbor without
    /// changing the subtree the partial summarizes (e.g. splitting the edge
    /// `(x, y)` with a junction `v` turns "x toward y" into "x toward v").
    pub fn remap_orientation(&mut self, node: NodeId, from: NodeId, to: NodeId) {
        if node < self.n_taxa {
            return;
        }
        let idx = self.inner_idx(node);
        if self.ws.orientation[idx] == Some(from) {
            self.ws.orientation[idx] = Some(to);
        }
    }

    /// Drop the cached partial of one inner node.
    pub fn clear_orientation(&mut self, node: NodeId) {
        if node >= self.n_taxa {
            let idx = self.inner_idx(node);
            self.ws.orientation[idx] = None;
        }
    }

    /// Log-likelihood of the tree, evaluated at an arbitrary branch (the
    /// result is branch-independent for reversible models — paper §5.2:
    /// "the log likelihood value is the same at all branches of the tree if
    /// the model of nucleotide substitution is time-reversible").
    pub fn log_likelihood(&mut self, tree: &Tree) -> f64 {
        let (u, v) = tree.first_edge();
        self.log_likelihood_at(tree, (u, v))
    }

    /// [`Self::log_likelihood`] with a numerical guard at the engine
    /// boundary: a non-finite value (NaN/−∞ from under-scaled partials in
    /// the optimized kernels) triggers exactly one re-evaluation under the
    /// most conservative configuration — scalar kernel, float-compare
    /// scaling checks, `libm` exp, no parallelism — with every cached
    /// partial invalidated so rescaling is applied from scratch. If even
    /// that is non-finite, the alignment/model combination is genuinely
    /// degenerate and a typed [`PhyloError::Numerical`] is returned.
    pub fn try_log_likelihood(&mut self, tree: &Tree) -> crate::error::Result<f64> {
        let mut lnl = self.log_likelihood(tree);
        if self.poison_numerics {
            self.poison_numerics = false;
            lnl = f64::NAN;
        }
        if lnl.is_finite() {
            return Ok(lnl);
        }
        // Forced conservative re-evaluation.
        let saved = self.config;
        self.config = LikelihoodConfig::baseline();
        self.invalidate_all();
        let recovered = self.log_likelihood(tree);
        self.config = saved;
        self.invalidate_all();
        if recovered.is_finite() {
            Ok(recovered)
        } else {
            Err(crate::error::PhyloError::Numerical { context: "log_likelihood", value: recovered })
        }
    }

    /// Test hook: make the next [`Self::try_log_likelihood`] see a NaN from
    /// its first evaluation, exercising the recovery path without having to
    /// construct a genuinely degenerate alignment.
    #[doc(hidden)]
    pub fn poison_next_evaluation(&mut self) {
        self.poison_numerics = true;
    }

    /// Log-likelihood evaluated at a specific branch.
    pub fn log_likelihood_at(&mut self, tree: &Tree, (u, v): Edge) -> f64 {
        self.prepare(tree, u, v, CallParent::Evaluate);
        let t = tree.branch_length(u, v);
        fill_pmats(
            &self.model,
            self.rates.rates(),
            t,
            self.config.exp_impl,
            &mut self.ws.pmat_eval,
        );

        let inner_ops = [u, v].iter().filter(|&&n| !tree.is_tip(n)).count() as u32;
        let lnl = {
            let ws = &self.ws;
            let op_u = operand_in(self.aln, self.n_taxa, &ws.partials, &ws.scales, u);
            let op_v = operand_in(self.aln, self.n_taxa, &ws.partials, &ws.scales, v);
            evaluate_dispatch(
                &op_u,
                &op_v,
                &ws.pmat_eval,
                self.model.freqs(),
                self.aln.weights(),
                self.n_rates,
                self.config.kernel,
                self.config.parallel,
            )
        };
        self.trace.push(KernelEvent {
            op: KernelOp::Evaluate,
            parent: CallParent::Search,
            patterns: self.n_patterns as u32,
            rates: self.n_rates as u32,
            exp_calls: (self.n_rates * 4) as u32,
            scaling_checks: 0,
            scalings: 0,
            newton_iters: 0,
            inner_operands: inner_ops,
        });
        lnl
    }

    /// Per-pattern log-likelihoods (unweighted), evaluated at the first
    /// branch. Feeds per-site rate estimation (the CAT model) and
    /// site-level diagnostics.
    pub fn site_log_likelihoods(&mut self, tree: &Tree) -> Vec<f64> {
        let (u, v) = tree.first_edge();
        self.prepare(tree, u, v, CallParent::Evaluate);
        let t = tree.branch_length(u, v);
        fill_pmats(
            &self.model,
            self.rates.rates(),
            t,
            self.config.exp_impl,
            &mut self.ws.pmat_eval,
        );
        let ws = &self.ws;
        let op_u = operand_in(self.aln, self.n_taxa, &ws.partials, &ws.scales, u);
        let op_v = operand_in(self.aln, self.n_taxa, &ws.partials, &ws.scales, v);
        super::kernels::evaluate_site_lnls(
            &op_u,
            &op_v,
            &ws.pmat_eval,
            self.model.freqs(),
            self.n_patterns,
            self.n_rates,
            self.config.kernel,
        )
    }

    /// Optimize the length of branch `(u, v)` by Newton–Raphson on the sum
    /// table (`makenewz`). Updates the tree and invalidates dependent
    /// partials. Returns the optimized length.
    pub fn optimize_branch(&mut self, tree: &mut Tree, edge: Edge) -> f64 {
        self.optimize_branch_with_iters(tree, edge, NEWTON_MAX_ITER).0
    }

    /// As [`Self::optimize_branch`] with an explicit Newton iteration cap —
    /// RAxML's lazy SPR scores candidate insertions with one or two Newton
    /// steps (`newzpercycle`). Returns `(optimized length, log-likelihood
    /// at the optimized length)`; the likelihood comes for free from the
    /// sum table, exactly as `makenewz` reports it to the search.
    pub fn optimize_branch_with_iters(
        &mut self,
        tree: &mut Tree,
        (u, v): Edge,
        max_iters: usize,
    ) -> (f64, f64) {
        self.prepare(tree, u, v, CallParent::Makenewz);
        let w_mat = self.model.eigen().w;
        let lambdas = self.model.eigen().values;
        let weights = self.aln.weights();
        {
            let ws = &mut self.ws;
            let op_u = operand_in(self.aln, self.n_taxa, &ws.partials, &ws.scales, u);
            let op_v = operand_in(self.aln, self.n_taxa, &ws.partials, &ws.scales, v);
            build_sumtable_into(
                &op_u,
                &op_v,
                &w_mat,
                self.n_patterns,
                self.n_rates,
                &mut ws.sum_data,
                &mut ws.sum_scale,
            );
        }
        self.ws.rates_scratch.clear();
        self.ws.rates_scratch.extend_from_slice(self.rates.rates());

        let mut t = tree.branch_length(u, v);
        let mut best_t = t;
        let mut best_lnl = f64::NEG_INFINITY;
        let mut iters = 0u32;
        for _ in 0..max_iters {
            let ws = &mut self.ws;
            let (lnl, d1, d2) = newton_dispatch(
                &ws.sum_data,
                &ws.sum_scale,
                self.n_rates,
                &lambdas,
                &ws.rates_scratch,
                t,
                weights,
                self.config.exp_impl,
                self.config.kernel,
                self.config.parallel,
                &mut ws.newton,
            );
            iters += 1;
            if lnl > best_lnl {
                best_lnl = lnl;
                best_t = t;
            }
            let dt = if d2 < 0.0 {
                -d1 / d2
            } else {
                // Convex region: move along the gradient geometrically
                // (RAxML's expand/shrink fallback).
                if d1 > 0.0 {
                    t
                } else {
                    -0.5 * t
                }
            };
            let t_new = clamp_branch(t + dt);
            if (t_new - t).abs() < NEWTON_TOL * t.max(1.0) {
                t = t_new;
                break;
            }
            t = t_new;
        }
        // Keep the best point actually visited (Newton can overshoot on
        // flat likelihood surfaces).
        let ws = &mut self.ws;
        let (final_lnl, _, _) = newton_dispatch(
            &ws.sum_data,
            &ws.sum_scale,
            self.n_rates,
            &lambdas,
            &ws.rates_scratch,
            t,
            weights,
            self.config.exp_impl,
            self.config.kernel,
            self.config.parallel,
            &mut ws.newton,
        );
        let mut lnl_at_t = final_lnl;
        if final_lnl < best_lnl {
            t = best_t;
            lnl_at_t = best_lnl;
        }
        t = clamp_branch(t);
        tree.set_branch_length(u, v, t);
        self.invalidate_for_branch(tree, u, v);

        let inner_ops = [u, v].iter().filter(|&&n| !tree.is_tip(n)).count() as u32;
        self.trace.push(KernelEvent {
            op: KernelOp::Makenewz,
            parent: CallParent::Search,
            patterns: self.n_patterns as u32,
            rates: self.n_rates as u32,
            exp_calls: iters * (self.n_rates * 4) as u32,
            scaling_checks: 0,
            scalings: 0,
            newton_iters: iters,
            inner_operands: inner_ops + 1,
        });
        (t, lnl_at_t)
    }

    /// One smoothing pass: optimize every branch once. Returns the final
    /// log-likelihood. `passes` controls how many sweeps to run (RAxML's
    /// `smoothings`).
    pub fn optimize_all_branches(&mut self, tree: &mut Tree, passes: usize) -> f64 {
        for _ in 0..passes {
            for (u, v) in tree.edges() {
                self.optimize_branch(tree, (u, v));
            }
        }
        self.log_likelihood(tree)
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    #[inline]
    fn inner_idx(&self, node: NodeId) -> usize {
        debug_assert!(node >= self.n_taxa);
        node - self.n_taxa
    }

    /// Ensure the partials facing the branch `(u, v)` are up to date:
    /// compile the stale sub-traversals into one [`TraversalOps`] list and
    /// execute it with the fused kernel driver, or (per-node mode) run the
    /// historical recursive dispatch.
    fn prepare(&mut self, tree: &Tree, u: NodeId, v: NodeId, parent: CallParent) {
        if self.options.fused_dispatch {
            self.compile_traversal(tree, u, v);
            self.execute_ops(parent);
        } else {
            if !tree.is_tip(u) {
                self.newview_traverse(tree, u, v, parent);
            }
            if !tree.is_tip(v) {
                self.newview_traverse(tree, v, u, parent);
            }
        }
    }

    /// Compile the stale portion of the traversal toward branch `(u, v)`
    /// into the workspace's descriptor list, in execution (bottom-up)
    /// order. The two endpoint segments cover disjoint subtrees (each side
    /// of the branch), so their descriptors are independent.
    fn compile_traversal(&mut self, tree: &Tree, u: NodeId, v: NodeId) {
        let n_taxa = self.n_taxa;
        let ws = &mut self.ws;
        let mut reused = 0u64;
        ws.ops.clear();
        for (p, toward) in [(u, v), (v, u)] {
            if tree.is_tip(p) {
                continue;
            }
            let start = ws.ops.len();
            ws.visit_stack.clear();
            ws.visit_stack.push((p, toward));
            // Discovery order puts every node before its descendants…
            while let Some((node, tw)) = ws.visit_stack.pop() {
                let idx = node - n_taxa;
                if ws.orientation[idx] == Some(tw) && ws.valid_gen[idx] == ws.cache_gen {
                    reused += 1;
                    continue; // already valid — subtree under it is too
                }
                let [(a, la), (b, lb)] = tree.other_neighbors(node, tw);
                ws.ops.push(TraversalOp {
                    node,
                    toward: tw,
                    left: a,
                    left_len: la,
                    right: b,
                    right_len: lb,
                    left_tip: tree.is_tip(a),
                    right_tip: tree.is_tip(b),
                });
                if !tree.is_tip(a) {
                    ws.visit_stack.push((a, node));
                }
                if !tree.is_tip(b) {
                    ws.visit_stack.push((b, node));
                }
            }
            // …so reversing the segment yields children-before-parents.
            ws.ops.reverse_from(start);
        }
        self.reuse.partials_reused += reused;
    }

    /// Execute the compiled descriptor list: one driver loop dispatching
    /// every `newview` back-to-back out of workspace buffers — the host
    /// analogue of the SPE executing a whole traversal from one DMA list
    /// with no per-node PPE↔SPE round trip (§5.2.7).
    fn execute_ops(&mut self, parent: CallParent) {
        let n_ops = self.ws.ops.len();
        for i in 0..n_ops {
            let op = self.ws.ops.get(i);
            fill_pmats(
                &self.model,
                self.rates.rates(),
                op.left_len,
                self.config.exp_impl,
                &mut self.ws.pmat_a,
            );
            fill_pmats(
                &self.model,
                self.rates.rates(),
                op.right_len,
                self.config.exp_impl,
                &mut self.ws.pmat_b,
            );
            if op.left_tip {
                build_tip_tables_into(&self.ws.pmat_a, &mut self.ws.tip_a);
            }
            if op.right_tip {
                build_tip_tables_into(&self.ws.pmat_b, &mut self.ws.tip_b);
            }

            let idx = self.inner_idx(op.node);
            let ws = &mut self.ws;
            // Move the output buffers out to satisfy the borrow checker
            // while reading sibling partials (moves, not allocations).
            let mut out_x = std::mem::take(&mut ws.partials[idx]);
            let mut out_scale = std::mem::take(&mut ws.scales[idx]);
            let stats = {
                let ca = child_in(
                    self.aln,
                    self.n_taxa,
                    &ws.partials,
                    &ws.scales,
                    &ws.pmat_a,
                    &ws.tip_a,
                    op.left,
                    op.left_tip,
                );
                let cb = child_in(
                    self.aln,
                    self.n_taxa,
                    &ws.partials,
                    &ws.scales,
                    &ws.pmat_b,
                    &ws.tip_b,
                    op.right,
                    op.right_tip,
                );
                newview_dispatch(
                    &ca,
                    &cb,
                    &mut out_x,
                    &mut out_scale,
                    self.n_rates,
                    self.config.kernel,
                    self.config.scaling,
                    self.config.parallel,
                )
            };
            ws.partials[idx] = out_x;
            ws.scales[idx] = out_scale;
            ws.orientation[idx] = Some(op.toward);
            ws.valid_gen[idx] = ws.cache_gen;
            self.reuse.partials_recomputed += 1;

            let kernel_op = match (op.left_tip, op.right_tip) {
                (true, true) => KernelOp::NewviewTipTip,
                (false, false) => KernelOp::NewviewInnerInner,
                _ => KernelOp::NewviewTipInner,
            };
            let inner_children = (!op.left_tip) as u32 + (!op.right_tip) as u32;
            self.trace.push(KernelEvent {
                op: kernel_op,
                parent,
                patterns: self.n_patterns as u32,
                rates: self.n_rates as u32,
                exp_calls: (2 * self.n_rates * 4) as u32,
                scaling_checks: stats.checks as u32,
                scalings: stats.fired as u32,
                newton_iters: 0,
                inner_operands: inner_children + 1,
            });
        }
        if n_ops > 0 {
            self.trace.record_fused_batch(n_ops as u64);
        }
    }

    /// Recompute (lazily) the partial at inner node `p` oriented toward
    /// `toward`, recursing into stale children first. Iterative post-order
    /// so deep trees cannot overflow the stack. This is the historical
    /// per-node dispatch path (fresh scratch per call), retained behind
    /// [`WorkspaceOptions::per_node`] as the fused dispatcher's baseline.
    fn newview_traverse(&mut self, tree: &Tree, p: NodeId, toward: NodeId, parent: CallParent) {
        debug_assert!(!tree.is_tip(p));
        // Collect the stale (node, toward) pairs in reverse finish order.
        let mut order: Vec<(NodeId, NodeId)> = Vec::new();
        let mut stack: Vec<(NodeId, NodeId)> = vec![(p, toward)];
        while let Some((node, tw)) = stack.pop() {
            let idx = self.inner_idx(node);
            if self.ws.orientation[idx] == Some(tw) && self.slot_is_current(idx) {
                self.reuse.partials_reused += 1;
                continue; // already valid — subtree under it is too
            }
            order.push((node, tw));
            for (child, _) in tree.other_neighbors(node, tw) {
                if !tree.is_tip(child) {
                    stack.push((child, node));
                }
            }
        }
        // Compute bottom-up. Every newview of this traversal is tagged with
        // the high-level caller: RAxML's `makenewz`/`evaluate` execute the
        // whole traversal descriptor internally, so under full offloading
        // (§5.2.7) these invocations run back-to-back on the SPE with no
        // per-node PPE↔SPE communication.
        for &(node, tw) in order.iter().rev() {
            self.compute_newview(tree, node, tw, parent);
        }
    }

    /// Unconditionally recompute the partial at `p` oriented toward `toward`
    /// (per-node path: allocates its P matrices and tip tables per call).
    fn compute_newview(&mut self, tree: &Tree, p: NodeId, toward: NodeId, parent: CallParent) {
        let [(a, la), (b, lb)] = tree.other_neighbors(p, toward);
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        fill_pmats(&self.model, self.rates.rates(), la, self.config.exp_impl, &mut pa);
        fill_pmats(&self.model, self.rates.rates(), lb, self.config.exp_impl, &mut pb);

        // Tip lookup tables are built only for tip children.
        let ta = tree.is_tip(a).then(|| build_tip_tables(&pa));
        let tb = tree.is_tip(b).then(|| build_tip_tables(&pb));

        // Move the output buffers out to satisfy the borrow checker while
        // reading sibling partials.
        let idx = self.inner_idx(p);
        let ws = &mut self.ws;
        let mut out_x = std::mem::take(&mut ws.partials[idx]);
        let mut out_scale = std::mem::take(&mut ws.scales[idx]);

        let stats = {
            let ca: Child<'_> = if tree.is_tip(a) {
                Child::Tip {
                    codes: self.aln.tip_row(a),
                    tables: ta.as_ref().expect("tip tables built for tip child"),
                }
            } else {
                let i = a - self.n_taxa;
                Child::Inner { x: &ws.partials[i], scale: &ws.scales[i], pmats: &pa }
            };
            let cb: Child<'_> = if tree.is_tip(b) {
                Child::Tip {
                    codes: self.aln.tip_row(b),
                    tables: tb.as_ref().expect("tip tables built for tip child"),
                }
            } else {
                let i = b - self.n_taxa;
                Child::Inner { x: &ws.partials[i], scale: &ws.scales[i], pmats: &pb }
            };
            newview_dispatch(
                &ca,
                &cb,
                &mut out_x,
                &mut out_scale,
                self.n_rates,
                self.config.kernel,
                self.config.scaling,
                self.config.parallel,
            )
        };

        ws.partials[idx] = out_x;
        ws.scales[idx] = out_scale;
        ws.orientation[idx] = Some(toward);
        ws.valid_gen[idx] = ws.cache_gen;
        self.reuse.partials_recomputed += 1;

        let op = match (tree.is_tip(a), tree.is_tip(b)) {
            (true, true) => KernelOp::NewviewTipTip,
            (false, false) => KernelOp::NewviewInnerInner,
            _ => KernelOp::NewviewTipInner,
        };
        let inner_children = [a, b].iter().filter(|&&n| !tree.is_tip(n)).count() as u32;
        self.trace.push(KernelEvent {
            op,
            parent,
            patterns: self.n_patterns as u32,
            rates: self.n_rates as u32,
            exp_calls: (2 * self.n_rates * 4) as u32,
            scaling_checks: stats.checks as u32,
            scalings: stats.fired as u32,
            newton_iters: 0,
            inner_operands: inner_children + 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::likelihood::KernelKind;
    use crate::model::ExpImpl;

    fn toy_setup() -> (PatternAlignment, Tree) {
        let aln = Alignment::from_named_sequences(&[
            ("t0", "ACGTACGTAAGGCCTTACGT"),
            ("t1", "ACGTACGAAAGGCCTTACGA"),
            ("t2", "ACGAACGAAAGACCTTACGA"),
            ("t3", "CCGAACGACAGACCTAACGA"),
            ("t4", "CCGAACTACAGACGTAACTA"),
        ])
        .unwrap();
        let pat = aln.compress();
        let mut tree = Tree::initial_triplet(5, 0.1).unwrap();
        let e = tree.edges();
        tree.add_taxon_on_edge(3, e[0], 0.1).unwrap();
        let e = tree.edges();
        tree.add_taxon_on_edge(4, e[1], 0.1).unwrap();
        (pat, tree)
    }

    fn engine<'a>(aln: &'a PatternAlignment, cfg: LikelihoodConfig) -> LikelihoodEngine<'a> {
        LikelihoodEngine::new(
            aln,
            SubstModel::gtr(aln.base_frequencies(), [1.0, 2.0, 1.0, 1.0, 2.0, 1.0]).unwrap(),
            GammaRates::standard(0.8).unwrap(),
            cfg,
        )
    }

    fn engine_with<'a>(
        aln: &'a PatternAlignment,
        cfg: LikelihoodConfig,
        options: WorkspaceOptions,
    ) -> LikelihoodEngine<'a> {
        LikelihoodEngine::with_options(
            aln,
            SubstModel::gtr(aln.base_frequencies(), [1.0, 2.0, 1.0, 1.0, 2.0, 1.0]).unwrap(),
            GammaRates::standard(0.8).unwrap(),
            cfg,
            options,
        )
    }

    #[test]
    fn likelihood_is_finite_and_negative() {
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let lnl = eng.log_likelihood(&tree);
        assert!(lnl.is_finite());
        assert!(lnl < 0.0, "lnl = {lnl}");
    }

    #[test]
    fn numerical_guard_recovers_from_a_poisoned_evaluation() {
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let clean = eng.try_log_likelihood(&tree).unwrap();
        assert_eq!(clean, eng.log_likelihood(&tree), "guard is a no-op on finite values");

        // Poison the next evaluation: the guard must fall back to the
        // conservative configuration and recover a finite value close to
        // the healthy one (baseline vs optimized agree to rounding).
        eng.poison_next_evaluation();
        let recovered = eng.try_log_likelihood(&tree).unwrap();
        assert!(recovered.is_finite());
        assert!(
            (recovered - clean).abs() < 1e-6 * clean.abs(),
            "recovered {recovered} vs clean {clean}"
        );
        // The engine's own configuration is restored afterwards.
        assert_eq!(eng.config().kernel, LikelihoodConfig::optimized().kernel);
        // And subsequent evaluations are healthy again.
        assert_eq!(eng.try_log_likelihood(&tree).unwrap(), clean);
    }

    #[test]
    fn likelihood_same_at_every_branch() {
        // The paper's §5.2 time-reversibility note.
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let edges = tree.edges();
        let reference = eng.log_likelihood_at(&tree, edges[0]);
        for &e in &edges[1..] {
            let lnl = eng.log_likelihood_at(&tree, e);
            assert!((lnl - reference).abs() < 1e-8, "branch {e:?}: {lnl} vs {reference}");
        }
    }

    #[test]
    fn all_configurations_agree() {
        let (aln, tree) = toy_setup();
        let mut reference = None;
        for exp_impl in [ExpImpl::Libm, ExpImpl::Sdk] {
            for kernel in [KernelKind::Scalar, KernelKind::Vector] {
                for scaling in [
                    super::super::ScalingCheck::FloatCompare,
                    super::super::ScalingCheck::IntegerCast,
                ] {
                    for parallel in [false, true] {
                        let cfg = LikelihoodConfig { exp_impl, kernel, scaling, parallel };
                        let mut eng = engine(&aln, cfg);
                        let lnl = eng.log_likelihood(&tree);
                        let r = *reference.get_or_insert(lnl);
                        assert!((lnl - r).abs() < 1e-9, "config {cfg:?} disagrees: {lnl} vs {r}");
                    }
                }
            }
        }
    }

    /// The fused descriptor-list driver and the historical per-node
    /// dispatch must produce bit-identical likelihoods, partials and scale
    /// counts, and the same kernel-call counts.
    #[test]
    fn fused_dispatch_bit_equal_to_per_node() {
        let (aln, mut tree) = toy_setup();
        let mut fused =
            engine_with(&aln, LikelihoodConfig::optimized(), WorkspaceOptions::default());
        let mut legacy =
            engine_with(&aln, LikelihoodConfig::optimized(), WorkspaceOptions::per_node());
        assert!(fused.options().fused_dispatch);
        assert!(!legacy.options().fused_dispatch);

        let a = fused.log_likelihood(&tree);
        let b = legacy.log_likelihood(&tree);
        assert_eq!(a, b, "dispatch modes must agree bit-for-bit");
        assert_eq!(fused.trace().counters().newview_calls, legacy.trace().counters().newview_calls);
        assert!(fused.trace().counters().fused_batches >= 1);
        assert!(fused.trace().counters().fused_ops >= 3);
        assert_eq!(legacy.trace().counters().fused_batches, 0);
        assert!(!fused.last_traversal().is_empty());
        assert!(legacy.last_traversal().is_empty());

        for node in aln.n_taxa()..tree.n_nodes() {
            let fa = fused.node_partial(node);
            let fb = legacy.node_partial(node);
            assert_eq!(fa, fb, "partials at node {node} differ");
        }

        // Branch optimization exercises makenewz + targeted invalidation.
        let mut tree2 = tree.clone();
        let la = fused.optimize_all_branches(&mut tree, 2);
        let lb = legacy.optimize_all_branches(&mut tree2, 2);
        assert_eq!(la, lb);
        assert_eq!(tree, tree2);
    }

    /// A workspace recycled through `into_workspace`/`with_workspace` gives
    /// bit-identical answers to a fresh allocation.
    #[test]
    fn recycled_workspace_matches_fresh() {
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let fresh = eng.log_likelihood(&tree);
        let ws = eng.into_workspace();

        let mut reused = LikelihoodEngine::with_workspace(
            &aln,
            SubstModel::gtr(aln.base_frequencies(), [1.0, 2.0, 1.0, 1.0, 2.0, 1.0]).unwrap(),
            GammaRates::standard(0.8).unwrap(),
            LikelihoodConfig::optimized(),
            WorkspaceOptions::default(),
            ws,
        );
        let again = reused.log_likelihood(&tree);
        assert_eq!(fresh, again, "recycled workspace must be bit-identical");
    }

    #[test]
    fn caching_gives_same_answer_as_cold_start() {
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let first = eng.log_likelihood(&tree);
        let calls_after_first = eng.trace().counters().newview_calls;
        let second = eng.log_likelihood(&tree);
        let calls_after_second = eng.trace().counters().newview_calls;
        assert_eq!(first, second);
        assert_eq!(
            calls_after_first, calls_after_second,
            "second evaluation at the same branch must be fully cached"
        );
        eng.invalidate_all();
        let third = eng.log_likelihood(&tree);
        assert!((first - third).abs() < 1e-12);
        assert!(eng.trace().counters().newview_calls > calls_after_second);
    }

    #[test]
    fn invalidate_all_is_generational_and_reuse_is_counted() {
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        eng.log_likelihood(&tree);
        let after_cold = eng.reuse_stats();
        assert!(after_cold.partials_recomputed >= 3, "cold start recomputes everything");
        assert_eq!(after_cold.partials_reused, 0);

        // Warm re-evaluation at the same branch: subtree roots are reused.
        eng.log_likelihood(&tree);
        let warm = eng.reuse_stats();
        assert_eq!(warm.partials_recomputed, after_cold.partials_recomputed);
        assert!(warm.partials_reused >= 1, "warm evaluation must reuse cached partials");

        // After the O(1) generation bump every slot is stale even though
        // its orientation still matches — nothing may be reused.
        eng.invalidate_all();
        eng.reset_reuse_stats();
        eng.log_likelihood(&tree);
        let cold = eng.reuse_stats();
        assert_eq!(cold.partials_reused, 0, "generation bump must invalidate all slots");
        assert_eq!(cold.partials_recomputed, after_cold.partials_recomputed);
    }

    #[test]
    fn optimize_branch_improves_likelihood() {
        let (aln, mut tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let before = eng.log_likelihood(&tree);
        for e in tree.edges() {
            eng.optimize_branch(&mut tree, e);
        }
        let after = eng.log_likelihood(&tree);
        assert!(after >= before - 1e-9, "branch optimization must not hurt: {before} -> {after}");
        assert!(after > before + 0.1, "expected a real improvement: {before} -> {after}");
    }

    #[test]
    fn optimize_all_branches_converges() {
        let (aln, mut tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let l1 = eng.optimize_all_branches(&mut tree, 1);
        let l2 = eng.optimize_all_branches(&mut tree, 1);
        let l3 = eng.optimize_all_branches(&mut tree, 1);
        assert!(l2 >= l1 - 1e-9);
        assert!(l3 >= l2 - 1e-9);
        assert!((l3 - l2).abs() < 0.01, "should be nearly converged: {l2} -> {l3}");
    }

    #[test]
    fn branch_invalidation_is_consistent_with_full_invalidation() {
        let (aln, mut tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let edges = tree.edges();
        eng.log_likelihood(&tree);
        // Change a branch, rely on targeted invalidation.
        let (u, v) = edges[1];
        tree.set_branch_length(u, v, 0.735);
        eng.invalidate_for_branch(&tree, u, v);
        let fast = eng.log_likelihood(&tree);
        // Full invalidation reference.
        eng.invalidate_all();
        let full = eng.log_likelihood(&tree);
        assert!((fast - full).abs() < 1e-10, "{fast} vs {full}");
    }

    #[test]
    fn trace_counts_accumulate() {
        let (aln, mut tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        eng.enable_event_recording();
        eng.log_likelihood(&tree);
        let e = tree.edges()[0];
        eng.optimize_branch(&mut tree, e);
        let c = eng.trace().counters();
        assert!(c.newview_calls >= 3);
        assert_eq!(c.evaluate_calls, 1);
        assert_eq!(c.makenewz_calls, 1);
        assert!(c.newton_iters >= 1);
        assert!(c.exp_calls > 0);
        assert!(!eng.trace().events().is_empty());
        let t = eng.take_trace();
        assert!(t.is_recording());
        assert_eq!(eng.trace().counters().newview_calls, 0);
    }

    #[test]
    fn set_alpha_changes_likelihood() {
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let l1 = eng.log_likelihood(&tree);
        eng.set_alpha(0.1).unwrap();
        let l2 = eng.log_likelihood(&tree);
        assert_ne!(l1, l2);
    }
}
