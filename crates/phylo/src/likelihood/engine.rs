//! The likelihood engine: per-node partial buffers, lazy virtual-root
//! traversal (`newview`), branch log-likelihood (`evaluate`) and Newton
//! branch-length optimization (`makenewz`) — the three functions the paper
//! offloads to the Cell SPEs, with the same laziness structure:
//! "`makenewz()` and `evaluate()` initially make calls to `newview()` before
//! they can execute their own computation" (§5.2).

use super::kernels::{build_sumtable, build_tip_tables, Child, EvalOperand, Mat4};
use super::LikelihoodConfig;
use crate::alignment::PatternAlignment;
use crate::model::{GammaRates, SubstModel};
use crate::parallel::{evaluate_dispatch, newton_dispatch, newview_dispatch};
use crate::trace::{CallParent, KernelEvent, KernelOp, Trace};
use crate::tree::{clamp_branch, Edge, NodeId, Tree};

/// Maximum Newton iterations per `makenewz`.
const NEWTON_MAX_ITER: usize = 32;
/// Newton convergence tolerance on the branch length.
const NEWTON_TOL: f64 = 1e-9;

/// The likelihood engine. One engine serves one alignment + model + tree
/// family; it owns the partial-likelihood buffers for every inner node.
pub struct LikelihoodEngine<'a> {
    aln: &'a PatternAlignment,
    model: SubstModel,
    rates: GammaRates,
    config: LikelihoodConfig,
    n_patterns: usize,
    n_rates: usize,
    /// Partial vectors per inner node (`[pattern][rate][state]` layout).
    partials: Vec<Vec<f64>>,
    /// Per-pattern scaling counts per inner node.
    scales: Vec<Vec<u32>>,
    /// `orientation[i] = Some(q)`: inner node `n_taxa + i`'s partial is
    /// valid for the tree rooted so that `q` is its parent.
    orientation: Vec<Option<NodeId>>,
    n_taxa: usize,
    trace: Trace,
}

impl<'a> LikelihoodEngine<'a> {
    /// Create an engine for an alignment, substitution model and rate model.
    pub fn new(
        aln: &'a PatternAlignment,
        model: SubstModel,
        rates: GammaRates,
        config: LikelihoodConfig,
    ) -> LikelihoodEngine<'a> {
        let n_taxa = aln.n_taxa();
        let n_inner = n_taxa.saturating_sub(2);
        let n_patterns = aln.n_patterns();
        let n_rates = rates.n_categories();
        LikelihoodEngine {
            aln,
            model,
            rates,
            config,
            n_patterns,
            n_rates,
            partials: vec![vec![0.0; n_patterns * n_rates * 4]; n_inner],
            scales: vec![vec![0; n_patterns]; n_inner],
            orientation: vec![None; n_inner],
            n_taxa,
            trace: Trace::counters_only(),
        }
    }

    /// The alignment this engine evaluates against.
    pub fn alignment(&self) -> &PatternAlignment {
        self.aln
    }

    /// Current substitution model.
    pub fn model(&self) -> &SubstModel {
        &self.model
    }

    /// Current rate model.
    pub fn rates(&self) -> &GammaRates {
        &self.rates
    }

    /// Engine configuration.
    pub fn config(&self) -> &LikelihoodConfig {
        &self.config
    }

    /// Replace the substitution model (invalidates all partials).
    pub fn set_model(&mut self, model: SubstModel) {
        self.model = model;
        self.invalidate_all();
    }

    /// Update the Γ shape parameter (invalidates all partials).
    pub fn set_alpha(&mut self, alpha: f64) -> crate::error::Result<()> {
        self.rates.set_alpha(alpha)?;
        self.invalidate_all();
        Ok(())
    }

    /// Access the collected trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Switch to full event recording (for cellsim replay).
    pub fn enable_event_recording(&mut self) {
        self.trace = Trace::recording();
    }

    /// Take the trace, leaving a fresh one with the same recording mode.
    pub fn take_trace(&mut self) -> Trace {
        let fresh =
            if self.trace.is_recording() { Trace::recording() } else { Trace::counters_only() };
        std::mem::replace(&mut self.trace, fresh)
    }

    /// Invalidate every cached partial (call after any topology change).
    pub fn invalidate_all(&mut self) {
        for o in &mut self.orientation {
            *o = None;
        }
    }

    /// Invalidate exactly the partials whose subtree contains the branch
    /// `(u, v)` — everything except partials oriented *toward* the branch.
    /// Call after changing that branch's length.
    pub fn invalidate_for_branch(&mut self, tree: &Tree, u: NodeId, v: NodeId) {
        // First hop from every node toward u (BFS with parent pointers).
        let mut hop = vec![usize::MAX; tree.n_nodes()];
        let mut stack = vec![u];
        let mut seen = vec![false; tree.n_nodes()];
        seen[u] = true;
        while let Some(x) = stack.pop() {
            for (n, _) in tree.neighbors_of(x) {
                if !seen[n] {
                    seen[n] = true;
                    hop[n] = x; // first hop from n toward u is x
                    stack.push(n);
                }
            }
        }
        hop[u] = v; // from u, the branch lies toward v

        for inner in self.n_taxa..tree.n_nodes() {
            let idx = inner - self.n_taxa;
            // Nodes not connected to the branch (e.g. a pruned subtree)
            // cannot contain it; their caches stay as they are.
            if hop[inner] == usize::MAX && inner != u {
                continue;
            }
            if let Some(q) = self.orientation[idx] {
                // The partial at `inner` toward q covers the subtree away
                // from q; it contains branch (u,v) unless q is the first hop
                // toward the branch.
                if q != hop[inner] {
                    self.orientation[idx] = None;
                }
            }
        }
    }

    /// Rename the target of a cached orientation: if `node`'s partial is
    /// valid "toward `from`", mark it valid "toward `to`" instead. Used by
    /// the SPR bookkeeping when a topology edit replaces a neighbor without
    /// changing the subtree the partial summarizes (e.g. splitting the edge
    /// `(x, y)` with a junction `v` turns "x toward y" into "x toward v").
    pub fn remap_orientation(&mut self, node: NodeId, from: NodeId, to: NodeId) {
        if node < self.n_taxa {
            return;
        }
        let idx = self.inner_idx(node);
        if self.orientation[idx] == Some(from) {
            self.orientation[idx] = Some(to);
        }
    }

    /// Drop the cached partial of one inner node.
    pub fn clear_orientation(&mut self, node: NodeId) {
        if node >= self.n_taxa {
            let idx = self.inner_idx(node);
            self.orientation[idx] = None;
        }
    }

    /// Log-likelihood of the tree, evaluated at an arbitrary branch (the
    /// result is branch-independent for reversible models — paper §5.2:
    /// "the log likelihood value is the same at all branches of the tree if
    /// the model of nucleotide substitution is time-reversible").
    pub fn log_likelihood(&mut self, tree: &Tree) -> f64 {
        let (u, v) = tree.edges()[0];
        self.log_likelihood_at(tree, (u, v))
    }

    /// Log-likelihood evaluated at a specific branch.
    pub fn log_likelihood_at(&mut self, tree: &Tree, (u, v): Edge) -> f64 {
        self.prepare(tree, u, v, CallParent::Evaluate);
        let t = tree.branch_length(u, v);
        let pmats = self.pmats(t);

        let (inner_ops, lnl);
        {
            let op_u = self.operand(u);
            let op_v = self.operand(v);
            inner_ops = [u, v].iter().filter(|&&n| !tree.is_tip(n)).count() as u32;
            lnl = evaluate_dispatch(
                &op_u,
                &op_v,
                &pmats,
                self.model.freqs(),
                self.aln.weights(),
                self.n_rates,
                self.config.kernel,
                self.config.parallel,
            );
        }
        self.trace.push(KernelEvent {
            op: KernelOp::Evaluate,
            parent: CallParent::Search,
            patterns: self.n_patterns as u32,
            rates: self.n_rates as u32,
            exp_calls: (self.n_rates * 4) as u32,
            scaling_checks: 0,
            scalings: 0,
            newton_iters: 0,
            inner_operands: inner_ops,
        });
        lnl
    }

    /// Per-pattern log-likelihoods (unweighted), evaluated at the first
    /// branch. Feeds per-site rate estimation (the CAT model) and
    /// site-level diagnostics.
    pub fn site_log_likelihoods(&mut self, tree: &Tree) -> Vec<f64> {
        let (u, v) = tree.edges()[0];
        self.prepare(tree, u, v, CallParent::Evaluate);
        let pmats = self.pmats(tree.branch_length(u, v));
        let op_u = self.operand(u);
        let op_v = self.operand(v);
        super::kernels::evaluate_site_lnls(
            &op_u,
            &op_v,
            &pmats,
            self.model.freqs(),
            self.n_patterns,
            self.n_rates,
            self.config.kernel,
        )
    }

    /// Optimize the length of branch `(u, v)` by Newton–Raphson on the sum
    /// table (`makenewz`). Updates the tree and invalidates dependent
    /// partials. Returns the optimized length.
    pub fn optimize_branch(&mut self, tree: &mut Tree, edge: Edge) -> f64 {
        self.optimize_branch_with_iters(tree, edge, NEWTON_MAX_ITER).0
    }

    /// As [`Self::optimize_branch`] with an explicit Newton iteration cap —
    /// RAxML's lazy SPR scores candidate insertions with one or two Newton
    /// steps (`newzpercycle`). Returns `(optimized length, log-likelihood
    /// at the optimized length)`; the likelihood comes for free from the
    /// sum table, exactly as `makenewz` reports it to the search.
    pub fn optimize_branch_with_iters(
        &mut self,
        tree: &mut Tree,
        (u, v): Edge,
        max_iters: usize,
    ) -> (f64, f64) {
        self.prepare(tree, u, v, CallParent::Makenewz);
        let st = {
            let op_u = self.operand(u);
            let op_v = self.operand(v);
            build_sumtable(&op_u, &op_v, &self.model.eigen().w, self.n_patterns, self.n_rates)
        };
        let lambdas = self.model.eigen().values;
        let rates = self.rates.rates().to_vec();
        let weights = self.aln.weights();

        let mut t = tree.branch_length(u, v);
        let mut best_t = t;
        let mut best_lnl = f64::NEG_INFINITY;
        let mut iters = 0u32;
        for _ in 0..max_iters {
            let (lnl, d1, d2) = newton_dispatch(
                &st,
                &lambdas,
                &rates,
                t,
                weights,
                self.config.exp_impl,
                self.config.kernel,
                self.config.parallel,
            );
            iters += 1;
            if lnl > best_lnl {
                best_lnl = lnl;
                best_t = t;
            }
            let dt = if d2 < 0.0 {
                -d1 / d2
            } else {
                // Convex region: move along the gradient geometrically
                // (RAxML's expand/shrink fallback).
                if d1 > 0.0 {
                    t
                } else {
                    -0.5 * t
                }
            };
            let t_new = clamp_branch(t + dt);
            if (t_new - t).abs() < NEWTON_TOL * t.max(1.0) {
                t = t_new;
                break;
            }
            t = t_new;
        }
        // Keep the best point actually visited (Newton can overshoot on
        // flat likelihood surfaces).
        let (final_lnl, _, _) = newton_dispatch(
            &st,
            &lambdas,
            &rates,
            t,
            weights,
            self.config.exp_impl,
            self.config.kernel,
            self.config.parallel,
        );
        let mut lnl_at_t = final_lnl;
        if final_lnl < best_lnl {
            t = best_t;
            lnl_at_t = best_lnl;
        }
        t = clamp_branch(t);
        tree.set_branch_length(u, v, t);
        self.invalidate_for_branch(tree, u, v);

        let inner_ops = [u, v].iter().filter(|&&n| !tree.is_tip(n)).count() as u32;
        self.trace.push(KernelEvent {
            op: KernelOp::Makenewz,
            parent: CallParent::Search,
            patterns: self.n_patterns as u32,
            rates: self.n_rates as u32,
            exp_calls: iters * (self.n_rates * 4) as u32,
            scaling_checks: 0,
            scalings: 0,
            newton_iters: iters,
            inner_operands: inner_ops + 1,
        });
        (t, lnl_at_t)
    }

    /// One smoothing pass: optimize every branch once. Returns the final
    /// log-likelihood. `passes` controls how many sweeps to run (RAxML's
    /// `smoothings`).
    pub fn optimize_all_branches(&mut self, tree: &mut Tree, passes: usize) -> f64 {
        for _ in 0..passes {
            for (u, v) in tree.edges() {
                self.optimize_branch(tree, (u, v));
            }
        }
        self.log_likelihood(tree)
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    #[inline]
    fn inner_idx(&self, node: NodeId) -> usize {
        debug_assert!(node >= self.n_taxa);
        node - self.n_taxa
    }

    /// Per-rate transition matrices for a branch of length `t`.
    fn pmats(&self, t: f64) -> Vec<Mat4> {
        self.rates
            .rates()
            .iter()
            .map(|&r| self.model.transition_matrix(t, r, self.config.exp_impl))
            .collect()
    }

    /// Evaluate operand for a node (tip codes or inner partials).
    fn operand(&self, node: NodeId) -> EvalOperand<'_> {
        if node < self.n_taxa {
            EvalOperand::Tip { codes: self.aln.tip_row(node) }
        } else {
            let idx = self.inner_idx(node);
            EvalOperand::Inner { x: &self.partials[idx], scale: &self.scales[idx] }
        }
    }

    /// Ensure the partials facing the branch `(u, v)` are up to date.
    fn prepare(&mut self, tree: &Tree, u: NodeId, v: NodeId, parent: CallParent) {
        if !tree.is_tip(u) {
            self.newview_traverse(tree, u, v, parent);
        }
        if !tree.is_tip(v) {
            self.newview_traverse(tree, v, u, parent);
        }
    }

    /// Recompute (lazily) the partial at inner node `p` oriented toward
    /// `toward`, recursing into stale children first. Iterative post-order
    /// so deep trees cannot overflow the stack.
    fn newview_traverse(
        &mut self,
        tree: &Tree,
        p: NodeId,
        toward: NodeId,
        parent: CallParent,
    ) {
        debug_assert!(!tree.is_tip(p));
        // Collect the stale (node, toward) pairs in reverse finish order.
        let mut order: Vec<(NodeId, NodeId)> = Vec::new();
        let mut stack: Vec<(NodeId, NodeId)> = vec![(p, toward)];
        while let Some((node, tw)) = stack.pop() {
            if self.orientation[self.inner_idx(node)] == Some(tw) {
                continue; // already valid — subtree under it is too
            }
            order.push((node, tw));
            for (child, _) in tree.other_neighbors(node, tw) {
                if !tree.is_tip(child) {
                    stack.push((child, node));
                }
            }
        }
        // Compute bottom-up. Every newview of this traversal is tagged with
        // the high-level caller: RAxML's `makenewz`/`evaluate` execute the
        // whole traversal descriptor internally, so under full offloading
        // (§5.2.7) these invocations run back-to-back on the SPE with no
        // per-node PPE↔SPE communication.
        for &(node, tw) in order.iter().rev() {
            self.compute_newview(tree, node, tw, parent);
        }
    }

    /// Unconditionally recompute the partial at `p` oriented toward `toward`.
    fn compute_newview(&mut self, tree: &Tree, p: NodeId, toward: NodeId, parent: CallParent) {
        let [(a, la), (b, lb)] = tree.other_neighbors(p, toward);
        let pa = self.pmats(la);
        let pb = self.pmats(lb);

        // Tip lookup tables are built only for tip children.
        let ta = tree.is_tip(a).then(|| build_tip_tables(&pa));
        let tb = tree.is_tip(b).then(|| build_tip_tables(&pb));

        // Move the output buffers out to satisfy the borrow checker while
        // reading sibling partials.
        let idx = self.inner_idx(p);
        let mut out_x = std::mem::take(&mut self.partials[idx]);
        let mut out_scale = std::mem::take(&mut self.scales[idx]);

        let stats = {
            let ca: Child<'_> = if tree.is_tip(a) {
                Child::Tip {
                    codes: self.aln.tip_row(a),
                    tables: ta.as_ref().expect("tip tables built for tip child"),
                }
            } else {
                let i = self.inner_idx(a);
                Child::Inner { x: &self.partials[i], scale: &self.scales[i], pmats: &pa }
            };
            let cb: Child<'_> = if tree.is_tip(b) {
                Child::Tip {
                    codes: self.aln.tip_row(b),
                    tables: tb.as_ref().expect("tip tables built for tip child"),
                }
            } else {
                let i = self.inner_idx(b);
                Child::Inner { x: &self.partials[i], scale: &self.scales[i], pmats: &pb }
            };
            newview_dispatch(
                &ca,
                &cb,
                &mut out_x,
                &mut out_scale,
                self.n_rates,
                self.config.kernel,
                self.config.scaling,
                self.config.parallel,
            )
        };

        self.partials[idx] = out_x;
        self.scales[idx] = out_scale;
        self.orientation[idx] = Some(toward);

        let op = match (tree.is_tip(a), tree.is_tip(b)) {
            (true, true) => KernelOp::NewviewTipTip,
            (false, false) => KernelOp::NewviewInnerInner,
            _ => KernelOp::NewviewTipInner,
        };
        let inner_children = [a, b].iter().filter(|&&n| !tree.is_tip(n)).count() as u32;
        self.trace.push(KernelEvent {
            op,
            parent,
            patterns: self.n_patterns as u32,
            rates: self.n_rates as u32,
            exp_calls: (2 * self.n_rates * 4) as u32,
            scaling_checks: stats.checks as u32,
            scalings: stats.fired as u32,
            newton_iters: 0,
            inner_operands: inner_children + 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::likelihood::KernelKind;
    use crate::model::ExpImpl;

    fn toy_setup() -> (PatternAlignment, Tree) {
        let aln = Alignment::from_named_sequences(&[
            ("t0", "ACGTACGTAAGGCCTTACGT"),
            ("t1", "ACGTACGAAAGGCCTTACGA"),
            ("t2", "ACGAACGAAAGACCTTACGA"),
            ("t3", "CCGAACGACAGACCTAACGA"),
            ("t4", "CCGAACTACAGACGTAACTA"),
        ])
        .unwrap();
        let pat = aln.compress();
        let mut tree = Tree::initial_triplet(5, 0.1).unwrap();
        let e = tree.edges();
        tree.add_taxon_on_edge(3, e[0], 0.1).unwrap();
        let e = tree.edges();
        tree.add_taxon_on_edge(4, e[1], 0.1).unwrap();
        (pat, tree)
    }

    fn engine<'a>(aln: &'a PatternAlignment, cfg: LikelihoodConfig) -> LikelihoodEngine<'a> {
        LikelihoodEngine::new(
            aln,
            SubstModel::gtr(aln.base_frequencies(), [1.0, 2.0, 1.0, 1.0, 2.0, 1.0]).unwrap(),
            GammaRates::standard(0.8).unwrap(),
            cfg,
        )
    }

    #[test]
    fn likelihood_is_finite_and_negative() {
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let lnl = eng.log_likelihood(&tree);
        assert!(lnl.is_finite());
        assert!(lnl < 0.0, "lnl = {lnl}");
    }

    #[test]
    fn likelihood_same_at_every_branch() {
        // The paper's §5.2 time-reversibility note.
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let edges = tree.edges();
        let reference = eng.log_likelihood_at(&tree, edges[0]);
        for &e in &edges[1..] {
            let lnl = eng.log_likelihood_at(&tree, e);
            assert!(
                (lnl - reference).abs() < 1e-8,
                "branch {e:?}: {lnl} vs {reference}"
            );
        }
    }

    #[test]
    fn all_configurations_agree() {
        let (aln, tree) = toy_setup();
        let mut reference = None;
        for exp_impl in [ExpImpl::Libm, ExpImpl::Sdk] {
            for kernel in [KernelKind::Scalar, KernelKind::Vector] {
                for scaling in
                    [super::super::ScalingCheck::FloatCompare, super::super::ScalingCheck::IntegerCast]
                {
                    for parallel in [false, true] {
                        let cfg = LikelihoodConfig { exp_impl, kernel, scaling, parallel };
                        let mut eng = engine(&aln, cfg);
                        let lnl = eng.log_likelihood(&tree);
                        let r = *reference.get_or_insert(lnl);
                        assert!(
                            (lnl - r).abs() < 1e-9,
                            "config {cfg:?} disagrees: {lnl} vs {r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn caching_gives_same_answer_as_cold_start() {
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let first = eng.log_likelihood(&tree);
        let calls_after_first = eng.trace().counters().newview_calls;
        let second = eng.log_likelihood(&tree);
        let calls_after_second = eng.trace().counters().newview_calls;
        assert_eq!(first, second);
        assert_eq!(
            calls_after_first, calls_after_second,
            "second evaluation at the same branch must be fully cached"
        );
        eng.invalidate_all();
        let third = eng.log_likelihood(&tree);
        assert!((first - third).abs() < 1e-12);
        assert!(eng.trace().counters().newview_calls > calls_after_second);
    }

    #[test]
    fn optimize_branch_improves_likelihood() {
        let (aln, mut tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let before = eng.log_likelihood(&tree);
        for e in tree.edges() {
            eng.optimize_branch(&mut tree, e);
        }
        let after = eng.log_likelihood(&tree);
        assert!(after >= before - 1e-9, "branch optimization must not hurt: {before} -> {after}");
        assert!(after > before + 0.1, "expected a real improvement: {before} -> {after}");
    }

    #[test]
    fn optimize_all_branches_converges() {
        let (aln, mut tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let l1 = eng.optimize_all_branches(&mut tree, 1);
        let l2 = eng.optimize_all_branches(&mut tree, 1);
        let l3 = eng.optimize_all_branches(&mut tree, 1);
        assert!(l2 >= l1 - 1e-9);
        assert!(l3 >= l2 - 1e-9);
        assert!((l3 - l2).abs() < 0.01, "should be nearly converged: {l2} -> {l3}");
    }

    #[test]
    fn branch_invalidation_is_consistent_with_full_invalidation() {
        let (aln, mut tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let edges = tree.edges();
        eng.log_likelihood(&tree);
        // Change a branch, rely on targeted invalidation.
        let (u, v) = edges[1];
        tree.set_branch_length(u, v, 0.735);
        eng.invalidate_for_branch(&tree, u, v);
        let fast = eng.log_likelihood(&tree);
        // Full invalidation reference.
        eng.invalidate_all();
        let full = eng.log_likelihood(&tree);
        assert!((fast - full).abs() < 1e-10, "{fast} vs {full}");
    }

    #[test]
    fn trace_counts_accumulate() {
        let (aln, mut tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        eng.enable_event_recording();
        eng.log_likelihood(&tree);
        let e = tree.edges()[0];
        eng.optimize_branch(&mut tree, e);
        let c = eng.trace().counters();
        assert!(c.newview_calls >= 3);
        assert_eq!(c.evaluate_calls, 1);
        assert_eq!(c.makenewz_calls, 1);
        assert!(c.newton_iters >= 1);
        assert!(c.exp_calls > 0);
        assert!(!eng.trace().events().is_empty());
        let t = eng.take_trace();
        assert!(t.is_recording());
        assert_eq!(eng.trace().counters().newview_calls, 0);
    }

    #[test]
    fn set_alpha_changes_likelihood() {
        let (aln, tree) = toy_setup();
        let mut eng = engine(&aln, LikelihoodConfig::optimized());
        let l1 = eng.log_likelihood(&tree);
        eng.set_alpha(0.1).unwrap();
        let l2 = eng.log_likelihood(&tree);
        assert_ne!(l1, l2);
    }
}
