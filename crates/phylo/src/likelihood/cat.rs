//! The CAT model of rate heterogeneity (Stamatakis 2006; paper §5.2.5).
//!
//! Instead of integrating every site over C Γ-distributed rate categories,
//! CAT assigns each site pattern to *one* of a small number of per-site
//! rate categories — trading the Γ integral's statistical rigor for a ~C×
//! smaller likelihood workload. RAxML estimates an individual rate per
//! site (maximizing that site's likelihood on the current tree), clusters
//! the rates into categories, and evaluates each site under its category
//! rate only.
//!
//! Implementation: per-site likelihood curves are sampled on a logarithmic
//! rate grid using the standard engine with a single homogeneous rate per
//! evaluation (which reuses the optimized kernels unchanged), refined with
//! a local quadratic fit. This mirrors RAxML's per-site rate optimization
//! at grid accuracy.

use super::engine::LikelihoodEngine;
use super::LikelihoodConfig;
use crate::alignment::PatternAlignment;
use crate::model::{CatRates, GammaRates, SubstModel};
use crate::tree::Tree;

/// Bounds of the per-site rate search (RAxML also clamps per-site rates).
pub const RATE_MIN: f64 = 0.01;
pub const RATE_MAX: f64 = 16.0;

/// Per-site likelihood curves: `curves[g][i]` is the log-likelihood of
/// pattern `i` when every site evolves at `grid[g]`.
pub struct SiteRateCurves {
    pub grid: Vec<f64>,
    pub curves: Vec<Vec<f64>>,
}

/// Sample per-site log-likelihood curves over a logarithmic rate grid.
pub fn sample_site_rate_curves(
    aln: &PatternAlignment,
    tree: &Tree,
    model: &SubstModel,
    config: LikelihoodConfig,
    grid_points: usize,
) -> SiteRateCurves {
    assert!(grid_points >= 3, "need at least three grid points");
    let log_min = RATE_MIN.ln();
    let log_max = RATE_MAX.ln();
    let grid: Vec<f64> = (0..grid_points)
        .map(|g| (log_min + (log_max - log_min) * g as f64 / (grid_points - 1) as f64).exp())
        .collect();

    let mut curves = Vec::with_capacity(grid_points);
    for &r in &grid {
        // A "homogeneous" Γ model with a single category at rate r: the
        // GammaRates type normalizes to mean 1, so instead we scale the
        // tree's branch lengths — rate r at branch t equals rate 1 at r·t.
        let mut scaled = tree.clone();
        for (a, b) in tree.edges() {
            scaled.set_branch_length(a, b, tree.branch_length(a, b) * r);
        }
        let mut engine =
            LikelihoodEngine::new(aln, model.clone(), GammaRates::homogeneous(), config);
        curves.push(engine.site_log_likelihoods(&scaled));
    }
    SiteRateCurves { grid, curves }
}

/// Estimate each pattern's best rate from sampled curves: grid argmax with
/// a local quadratic (log-rate) refinement.
pub fn estimate_pattern_rates(curves: &SiteRateCurves, n_patterns: usize) -> Vec<f64> {
    let g = curves.grid.len();
    (0..n_patterns)
        .map(|i| {
            let mut best = 0usize;
            for k in 1..g {
                if curves.curves[k][i] > curves.curves[best][i] {
                    best = k;
                }
            }
            if best == 0 || best == g - 1 {
                return curves.grid[best];
            }
            // Quadratic fit in log-rate through the three bracketing points.
            let x0 = curves.grid[best - 1].ln();
            let x1 = curves.grid[best].ln();
            let x2 = curves.grid[best + 1].ln();
            let y0 = curves.curves[best - 1][i];
            let y1 = curves.curves[best][i];
            let y2 = curves.curves[best + 1][i];
            let denom = (x1 - x0) * (y1 - y2) - (x1 - x2) * (y1 - y0);
            if denom.abs() < 1e-30 {
                return curves.grid[best];
            }
            let num = (x1 - x0).powi(2) * (y1 - y2) - (x1 - x2).powi(2) * (y1 - y0);
            let x_star = x1 - 0.5 * num / denom;
            x_star.exp().clamp(RATE_MIN, RATE_MAX)
        })
        .collect()
}

/// Result of fitting a CAT model to a tree.
#[derive(Debug, Clone)]
pub struct CatFit {
    /// The clustered per-site categories.
    pub rates: CatRates,
    /// CAT log-likelihood of the tree (Σᵢ wᵢ · ln Lᵢ(r_cat(i))).
    pub log_likelihood: f64,
}

/// Fit a CAT model: estimate per-pattern rates on the tree, cluster into at
/// most `max_categories`, and evaluate the CAT likelihood (each pattern
/// scored under its category rate).
pub fn fit_cat(
    aln: &PatternAlignment,
    tree: &Tree,
    model: &SubstModel,
    config: LikelihoodConfig,
    max_categories: usize,
    grid_points: usize,
) -> CatFit {
    let curves = sample_site_rate_curves(aln, tree, model, config, grid_points);
    let pattern_rates = estimate_pattern_rates(&curves, aln.n_patterns());
    let rates = CatRates::from_pattern_rates(&pattern_rates, max_categories)
        .expect("estimated rates are positive");
    let log_likelihood = cat_log_likelihood(aln, tree, model, config, &rates);
    CatFit { rates, log_likelihood }
}

/// CAT log-likelihood of a tree: each pattern under its single category
/// rate. Evaluates one homogeneous pass per category and picks each
/// pattern's own value — the grouped-run strategy RAxML's CAT kernels use,
/// expressed over the standard engine.
pub fn cat_log_likelihood(
    aln: &PatternAlignment,
    tree: &Tree,
    model: &SubstModel,
    config: LikelihoodConfig,
    cat: &CatRates,
) -> f64 {
    assert_eq!(cat.pattern_category().len(), aln.n_patterns(), "CAT fit matches alignment");
    let weights = aln.weights();
    let mut lnl = 0.0;
    for (c, &r) in cat.category_rates().iter().enumerate() {
        let mut scaled = tree.clone();
        for (a, b) in tree.edges() {
            scaled.set_branch_length(a, b, tree.branch_length(a, b) * r);
        }
        let mut engine =
            LikelihoodEngine::new(aln, model.clone(), GammaRates::homogeneous(), config);
        let site = engine.site_log_likelihoods(&scaled);
        for (i, &cat_i) in cat.pattern_category().iter().enumerate() {
            if cat_i == c && weights[i] > 0.0 {
                lnl += weights[i] * site[i];
            }
        }
    }
    lnl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::SimulationConfig;

    fn setup() -> (PatternAlignment, Tree, SubstModel) {
        // Strong rate heterogeneity so CAT has something to find.
        let w =
            SimulationConfig { alpha: 0.3, mean_branch: 0.15, ..SimulationConfig::new(8, 500, 77) }
                .generate();
        let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
        (w.alignment, w.true_tree, model)
    }

    #[test]
    fn curves_have_grid_shape() {
        let (aln, tree, model) = setup();
        let curves = sample_site_rate_curves(&aln, &tree, &model, LikelihoodConfig::optimized(), 9);
        assert_eq!(curves.grid.len(), 9);
        assert_eq!(curves.curves.len(), 9);
        for c in &curves.curves {
            assert_eq!(c.len(), aln.n_patterns());
            assert!(c.iter().all(|x| x.is_finite() && *x <= 0.0));
        }
        // The grid is increasing and spans the bounds.
        assert!((curves.grid[0] - RATE_MIN).abs() < 1e-12);
        assert!((curves.grid[8] - RATE_MAX).abs() < 1e-9);
    }

    #[test]
    fn estimated_rates_spread_on_heterogeneous_data() {
        let (aln, tree, model) = setup();
        let curves =
            sample_site_rate_curves(&aln, &tree, &model, LikelihoodConfig::optimized(), 13);
        let rates = estimate_pattern_rates(&curves, aln.n_patterns());
        assert_eq!(rates.len(), aln.n_patterns());
        assert!(rates.iter().all(|&r| (RATE_MIN..=RATE_MAX).contains(&r)));
        // α = 0.3 data must produce both very slow and fast sites.
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        assert!(min < 0.2, "slow sites expected, min = {min}");
        assert!(max > 1.5, "fast sites expected, max = {max}");
    }

    #[test]
    fn cat_beats_homogeneous_on_heterogeneous_data() {
        let (aln, tree, model) = setup();
        let cfg = LikelihoodConfig::optimized();
        let fit = fit_cat(&aln, &tree, &model, cfg, 8, 13);
        assert!(fit.rates.n_categories() <= 8);

        // Homogeneous likelihood (a single rate-1 category).
        let mut engine = LikelihoodEngine::new(&aln, model.clone(), GammaRates::homogeneous(), cfg);
        let homogeneous = engine.log_likelihood(&tree);
        assert!(
            fit.log_likelihood > homogeneous,
            "CAT must improve on one rate for heterogeneous data: {} vs {homogeneous}",
            fit.log_likelihood
        );
    }

    #[test]
    fn more_categories_never_hurt() {
        let (aln, tree, model) = setup();
        let cfg = LikelihoodConfig::optimized();
        let few = fit_cat(&aln, &tree, &model, cfg, 2, 13);
        let many = fit_cat(&aln, &tree, &model, cfg, 16, 13);
        assert!(
            many.log_likelihood >= few.log_likelihood - 1e-6,
            "{} vs {}",
            many.log_likelihood,
            few.log_likelihood
        );
    }

    #[test]
    fn single_category_cat_equals_scaled_homogeneous() {
        let (aln, tree, model) = setup();
        let cfg = LikelihoodConfig::optimized();
        let cat = CatRates::from_pattern_rates(&vec![1.0; aln.n_patterns()], 1).unwrap();
        let via_cat = cat_log_likelihood(&aln, &tree, &model, cfg, &cat);
        let mut engine = LikelihoodEngine::new(&aln, model.clone(), GammaRates::homogeneous(), cfg);
        let direct = engine.log_likelihood(&tree);
        assert!((via_cat - direct).abs() < 1e-8, "{via_cat} vs {direct}");
    }
}
