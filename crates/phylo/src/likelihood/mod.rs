//! The likelihood core: the three kernels RAxML-Cell offloads to the SPEs.
//!
//! * [`kernels`] — case-specialized `newview` partial-likelihood loops
//!   (paper §5.2.3: tip/tip, tip/inner, inner/inner), in scalar and 2-lane
//!   vectorized form (§5.2.5, Figure 2), with both the floating-point and
//!   the integer-cast underflow-scaling conditional (§5.2.3).
//! * [`cat`] — the CAT per-site rate approximation (fit, per-site rate
//!   estimation, CAT likelihood).
//! * [`engine`] — the [`engine::LikelihoodEngine`]: per-node partial
//!   buffers, lazy virtual-root traversal, `evaluate` and `makenewz`.
//! * [`workspace`] — preallocated [`workspace::LikelihoodWorkspace`] arenas
//!   (all hot-path buffers, allocated once and pooled across replicates)
//!   and the fused [`workspace::TraversalOps`] descriptor lists traversals
//!   compile into (the SPE DMA-list / BEAGLE operation-array analogue).
//! * [`mod@reference`] — a deliberately naive implementation used only to
//!   validate the optimized kernels.

pub mod cat;
pub mod engine;
pub mod kernels;
pub mod reference;
pub mod workspace;

pub use workspace::{
    LikelihoodWorkspace, TraversalOp, TraversalOps, WorkspaceOptions, WorkspacePool,
};

/// RAxML's `minlikelihood`: partials below this threshold (for every state
/// and rate category of a site) are rescaled to avoid numerical underflow.
/// The value is 2⁻²⁵⁶, so the rescaling multiplier is exactly representable.
pub const SCALE_THRESHOLD: f64 = 8.636168555094445e-78; // 2^-256

/// The rescaling multiplier 2²⁵⁶ (RAxML's `twotothe256`).
pub const SCALE_MULTIPLIER: f64 = 1.157920892373162e77; // 2^256

/// ln(2⁻²⁵⁶): each scaling event contributes this constant to the per-site
/// log-likelihood.
pub const LN_SCALE: f64 = -177.445_678_223_346; // -256 · ln 2

/// Pattern-block width of the tiled CLV layout: partials are stored in
/// blocks of `TILE` site patterns so that 2-, 4- and 8-lane kernels all
/// read full lanes from one contiguous tile. `TILE` is the widest lane
/// count, so every narrower kernel divides it evenly.
pub const TILE: usize = 8;

/// Which arithmetic formulation the `newview` loops use. Lanes map to
/// *patterns* (never to states), so every kind performs the identical
/// per-pattern operation sequence and all four are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Straight-line scalar code (the paper's starting point).
    Scalar,
    /// 2-lane `[f64; 2]` vectorized loops mirroring the SPE's 128-bit
    /// registers (paper Figure 2).
    #[default]
    Vector,
    /// 4-lane pattern-parallel loops (AVX2-width autovectorization).
    Wide4,
    /// 8-lane pattern-parallel loops (AVX-512-width autovectorization).
    /// Portable Rust — correct everywhere — but only *selected* by
    /// [`widest_kernel`] when [`wide8_supported`] says the hardware has
    /// 512-bit registers to back it.
    Wide8,
}

impl KernelKind {
    /// How many site patterns one kernel iteration advances.
    pub fn lanes(self) -> usize {
        match self {
            KernelKind::Scalar => 1,
            KernelKind::Vector => 2,
            KernelKind::Wide4 => 4,
            KernelKind::Wide8 => 8,
        }
    }
}

/// Whether the 8-lane kernel is worth selecting on this host. The kernel
/// itself is portable Rust and correct on every target; this check only
/// gates *selection* on hardware with 512-bit vector registers.
pub fn wide8_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The widest kernel kind the host supports.
pub fn widest_kernel() -> KernelKind {
    if wide8_supported() {
        KernelKind::Wide8
    } else {
        KernelKind::Wide4
    }
}

/// How the underflow-scaling conditional is evaluated (paper §5.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScalingCheck {
    /// `ABS(x) < minlikelihood` on doubles — 8 hard-to-predict conditions.
    FloatCompare,
    /// Reinterpret the (positive) doubles as unsigned integers and compare
    /// those: IEEE-754 doubles of one sign are lexicographically ordered by
    /// their bit patterns, so the outcome is identical and branch-friendly.
    #[default]
    IntegerCast,
}

/// Runtime configuration of the likelihood engine — every switch corresponds
/// to one of the paper's optimizations so each can be measured independently.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LikelihoodConfig {
    /// libm vs SDK-style exponential (§5.2.2).
    pub exp_impl: crate::model::ExpImpl,
    /// Scalar vs vectorized likelihood loops (§5.2.5).
    pub kernel: KernelKind,
    /// Float vs integer-cast scaling conditional (§5.2.3).
    pub scaling: ScalingCheck,
    /// Loop-level parallelism over site patterns with rayon (the
    /// RAxML-OMP analogue; the paper's third parallelism layer).
    pub parallel: bool,
}

impl LikelihoodConfig {
    /// The fully optimized configuration (sequential).
    pub fn optimized() -> LikelihoodConfig {
        LikelihoodConfig {
            exp_impl: crate::model::ExpImpl::Sdk,
            kernel: KernelKind::Vector,
            scaling: ScalingCheck::IntegerCast,
            parallel: false,
        }
    }

    /// The unoptimized baseline (what the naive Cell port ran).
    pub fn baseline() -> LikelihoodConfig {
        LikelihoodConfig {
            exp_impl: crate::model::ExpImpl::Libm,
            kernel: KernelKind::Scalar,
            scaling: ScalingCheck::FloatCompare,
            parallel: false,
        }
    }
}
