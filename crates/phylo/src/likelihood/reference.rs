//! A deliberately naive likelihood implementation used to validate the
//! optimized kernels.
//!
//! Independence from the production path is the point: transition matrices
//! are computed by scaling-and-squaring series exponentiation of the rate
//! matrix (not eigendecomposition), conditional likelihoods by direct
//! recursion (no pattern-sharing tricks, no underflow scaling, no case
//! specialization). Only usable on small trees — exactly what tests need.

use crate::alignment::PatternAlignment;
use crate::alphabet::TIP_LIKELIHOODS;
use crate::model::{GammaRates, SubstModel};
use crate::tree::{NodeId, Tree};

/// Build the normalized GTR rate matrix from first principles (duplicating
/// the model's internal construction on purpose).
fn rate_matrix(model: &SubstModel) -> [[f64; 4]; 4] {
    let f = model.freqs();
    let ex = model.exchange();
    let order = [(0usize, 1usize), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    let mut r = [[0.0; 4]; 4];
    for (idx, &(i, j)) in order.iter().enumerate() {
        r[i][j] = ex[idx];
        r[j][i] = ex[idx];
    }
    let mut q = [[0.0; 4]; 4];
    for i in 0..4 {
        let mut row = 0.0;
        for j in 0..4 {
            if i != j {
                q[i][j] = r[i][j] * f[j];
                row += q[i][j];
            }
        }
        q[i][i] = -row;
    }
    let mu: f64 = -(0..4).map(|i| f[i] * q[i][i]).sum::<f64>();
    for row in &mut q {
        for x in row.iter_mut() {
            *x /= mu;
        }
    }
    q
}

/// Matrix exponential `e^{Q·t}` by scaling and squaring with a Taylor
/// series — slow, simple, and independent of the eigen path.
pub fn expm(q: &[[f64; 4]; 4], t: f64) -> [[f64; 4]; 4] {
    // Scale so the argument is small, exponentiate by series, square back.
    let norm: f64 =
        q.iter().map(|row| row.iter().map(|x| x.abs()).sum::<f64>()).fold(0.0, f64::max);
    let mut squarings = 0u32;
    let mut scale = t;
    while norm * scale.abs() > 0.5 {
        scale *= 0.5;
        squarings += 1;
    }

    // Taylor series for e^{Q·scale}.
    let mut result = identity();
    let mut term = identity();
    for k in 1..=24 {
        term = mat_mul(&term, &mat_scale(q, scale / k as f64));
        result = mat_add(&result, &term);
    }
    for _ in 0..squarings {
        result = mat_mul(&result, &result);
    }
    result
}

fn identity() -> [[f64; 4]; 4] {
    let mut m = [[0.0; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

fn mat_mul(a: &[[f64; 4]; 4], b: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
    let mut c = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                c[i][j] += a[i][k] * b[k][j];
            }
        }
    }
    c
}

fn mat_add(a: &[[f64; 4]; 4], b: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
    let mut c = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = a[i][j] + b[i][j];
        }
    }
    c
}

fn mat_scale(a: &[[f64; 4]; 4], s: f64) -> [[f64; 4]; 4] {
    let mut c = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = a[i][j] * s;
        }
    }
    c
}

/// Conditional likelihood of the subtree at `node` (seen from `parent`) for
/// one pattern and one rate multiplier.
fn conditional(
    tree: &Tree,
    aln: &PatternAlignment,
    q: &[[f64; 4]; 4],
    rate: f64,
    pattern: usize,
    node: NodeId,
    parent: NodeId,
) -> [f64; 4] {
    if tree.is_tip(node) {
        return TIP_LIKELIHOODS[aln.tip_row(node)[pattern] as usize];
    }
    let mut out = [1.0; 4];
    for (child, len) in tree.neighbors_of(node) {
        if child == parent {
            continue;
        }
        let p = expm(q, len * rate);
        let cl = conditional(tree, aln, q, rate, pattern, child, node);
        for s in 0..4 {
            let mut acc = 0.0;
            for (t, &clt) in cl.iter().enumerate() {
                acc += p[s][t] * clt;
            }
            out[s] *= acc;
        }
    }
    out
}

/// Naive log-likelihood of the tree under the model — the ground truth the
/// optimized engine is validated against.
pub fn log_likelihood_naive(
    tree: &Tree,
    aln: &PatternAlignment,
    model: &SubstModel,
    rates: &GammaRates,
) -> f64 {
    let q = rate_matrix(model);
    let freqs = model.freqs();
    let (u, v) = tree.edges()[0];
    let n_rates = rates.n_categories();
    let mut lnl = 0.0;
    for i in 0..aln.n_patterns() {
        let w = aln.weights()[i];
        if w == 0.0 {
            continue;
        }
        let mut site = 0.0;
        for &r in rates.rates() {
            let lu = conditional(tree, aln, &q, r, i, u, v);
            let lv = conditional(tree, aln, &q, r, i, v, u);
            let p = expm(&q, tree.branch_length(u, v) * r);
            for s in 0..4 {
                let mut acc = 0.0;
                for (t, &lvt) in lv.iter().enumerate() {
                    acc += p[s][t] * lvt;
                }
                site += freqs[s] * lu[s] * acc;
            }
        }
        lnl += w * (site / n_rates as f64).ln();
    }
    lnl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::likelihood::engine::LikelihoodEngine;
    use crate::likelihood::LikelihoodConfig;
    use crate::model::ExpImpl;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expm_matches_eigendecomposition() {
        let m = SubstModel::gtr([0.3, 0.2, 0.25, 0.25], [1.2, 3.1, 0.8, 0.9, 3.4, 1.0]).unwrap();
        let q = rate_matrix(&m);
        for &t in &[0.01, 0.2, 1.0, 5.0] {
            let series = expm(&q, t);
            let eigen = m.transition_matrix(t, 1.0, ExpImpl::Libm);
            for i in 0..4 {
                for j in 0..4 {
                    assert!(
                        (series[i][j] - eigen[i][j]).abs() < 1e-10,
                        "t={t} ({i},{j}): {} vs {}",
                        series[i][j],
                        eigen[i][j]
                    );
                }
            }
        }
    }

    /// Hand-computable 3-taxon case: L_col = Σ_s π_s Π_j P(t_j)[s][x_j].
    #[test]
    fn three_taxon_closed_form() {
        let aln = Alignment::from_named_sequences(&[("a", "AC"), ("b", "AG"), ("c", "AT")])
            .unwrap()
            .compress();
        let model = SubstModel::jc69();
        let rates = GammaRates::homogeneous();
        let tree = Tree::initial_triplet(3, 0.2).unwrap();

        let naive = log_likelihood_naive(&tree, &aln, &model, &rates);

        // Closed form under JC with all branch lengths 0.2.
        let e = (-4.0 * 0.2 / 3.0f64).exp();
        let p_same = 0.25 + 0.75 * e;
        let p_diff = 0.25 - 0.25 * e;
        // Column 1 (A,A,A): Σ_s π_s P[s][A]³ = ¼(p_same³ + 3·p_diff³).
        let col1: f64 = 0.25 * (p_same.powi(3) + 3.0 * p_diff.powi(3));
        // Column 2 (C,G,T): Σ_s π_s P[s][C]·P[s][G]·P[s][T]
        //   = ¼(p_diff³ + 3·p_same·p_diff²)  (root = A gives the p_diff³ term).
        let col2: f64 = 0.25 * (p_diff.powi(3) + 3.0 * p_same * p_diff * p_diff);
        let expected = col1.ln() + col2.ln();
        assert!((naive - expected).abs() < 1e-10, "naive {naive} vs closed form {expected}");
    }

    #[test]
    fn engine_matches_naive_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(20260706);
        for trial in 0..5 {
            let workload = crate::simulate::SimulationConfig::new(6, 40, 1000 + trial).generate();
            let aln = workload.alignment;
            let tree = Tree::random(6, 0.15, &mut rng).unwrap();
            let model =
                SubstModel::gtr(aln.base_frequencies(), [1.1, 2.5, 0.7, 1.3, 2.9, 1.0]).unwrap();
            let rates = GammaRates::standard(0.6).unwrap();

            let naive = log_likelihood_naive(&tree, &aln, &model, &rates);
            let mut eng = LikelihoodEngine::new(&aln, model, rates, LikelihoodConfig::optimized());
            let fast = eng.log_likelihood(&tree);
            assert!(
                (naive - fast).abs() < 1e-6 * naive.abs().max(1.0),
                "trial {trial}: naive {naive} vs engine {fast}"
            );
        }
    }

    #[test]
    fn engine_matches_naive_with_bootstrap_weights() {
        let mut rng = StdRng::seed_from_u64(42);
        let workload = crate::simulate::SimulationConfig::new(5, 60, 7).generate();
        let aln = workload.alignment.bootstrap_replicate(&mut rng);
        let tree = Tree::random(5, 0.2, &mut rng).unwrap();
        let model = SubstModel::jc69();
        let rates = GammaRates::standard(1.0).unwrap();
        let naive = log_likelihood_naive(&tree, &aln, &model, &rates);
        let mut eng = LikelihoodEngine::new(&aln, model, rates, LikelihoodConfig::optimized());
        let fast = eng.log_likelihood(&tree);
        assert!((naive - fast).abs() < 1e-6 * naive.abs().max(1.0), "{naive} vs {fast}");
    }
}
