//! Unrooted binary phylogenetic trees.
//!
//! An unrooted binary tree over `n ≥ 3` taxa has `n` tips (degree 1),
//! `n − 2` inner nodes (degree 3) and `2n − 3` branches. Nodes live in an
//! arena: tips are `0..n` (indexing the alignment's taxa), inner nodes are
//! `n..2n−2`. Each node stores up to three (neighbor, branch length) slots —
//! the Rust analogue of RAxML's three-`nodeptr` inner-node records.
//!
//! Likelihood code never roots the tree; it places a *virtual root* on a
//! branch (paper §5.2: `newview` computes the partial likelihood vector "at
//! an inner node p which is at the root of a subtree").

use crate::error::{PhyloError, Result};
use rand::Rng;
use std::fmt::Write as _;

/// Index of a node in the tree arena.
pub type NodeId = usize;

/// Minimum branch length (RAxML's `zmin` analogue): keeps `P(t)` away from
/// the identity's derivative singularity during Newton optimization.
pub const MIN_BRANCH: f64 = 1e-8;
/// Maximum branch length: beyond this, `P(t)` is numerically stationary.
pub const MAX_BRANCH: f64 = 15.0;

/// Clamp a branch length into the legal range.
#[inline]
pub fn clamp_branch(len: f64) -> f64 {
    len.clamp(MIN_BRANCH, MAX_BRANCH)
}

/// An unrooted binary tree with branch lengths.
///
/// Equality is *structural*: two trees are equal when they have the same
/// taxa, the same adjacency and the same branch lengths, regardless of the
/// internal neighbor-slot order (which depends on edit history).
#[derive(Debug, Clone)]
pub struct Tree {
    n_taxa: usize,
    /// Up to three neighbors per node; tips use slot 0 only.
    neighbors: Vec<[Option<NodeId>; 3]>,
    /// Branch length of the corresponding neighbor slot.
    lengths: Vec<[f64; 3]>,
    /// Number of inner nodes currently in use (supports stepwise growth).
    n_inner_used: usize,
}

/// An undirected edge, canonically ordered (`small, large`).
pub type Edge = (NodeId, NodeId);

/// Canonicalize an edge.
#[inline]
pub fn edge(a: NodeId, b: NodeId) -> Edge {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Tree {
    /// Create the unique 3-taxon tree over tips `{0, 1, 2}` (of an eventual
    /// `n_taxa`-taxon tree) joined at the first inner node, with the given
    /// initial branch length on all three branches.
    pub fn initial_triplet(n_taxa: usize, initial_len: f64) -> Result<Tree> {
        Tree::initial_triplet_of(n_taxa, [0, 1, 2], initial_len)
    }

    /// Create the 3-taxon tree over an arbitrary tip triple (used by
    /// randomized stepwise addition, which starts from a random triple).
    pub fn initial_triplet_of(n_taxa: usize, tips: [NodeId; 3], initial_len: f64) -> Result<Tree> {
        if n_taxa < 3 {
            return Err(PhyloError::TooFewTaxa { found: n_taxa, required: 3 });
        }
        for &t in &tips {
            if t >= n_taxa {
                return Err(PhyloError::TreeStructure(format!("tip {t} out of range")));
            }
        }
        if tips[0] == tips[1] || tips[0] == tips[2] || tips[1] == tips[2] {
            return Err(PhyloError::TreeStructure("triplet tips must be distinct".into()));
        }
        let n_nodes = 2 * n_taxa - 2;
        let mut t = Tree {
            n_taxa,
            neighbors: vec![[None; 3]; n_nodes],
            lengths: vec![[0.0; 3]; n_nodes],
            n_inner_used: 1,
        };
        let center = n_taxa; // first inner node
        for (slot, tip) in tips.iter().enumerate() {
            t.neighbors[center][slot] = Some(*tip);
            t.lengths[center][slot] = initial_len;
            t.neighbors[*tip][0] = Some(center);
            t.lengths[*tip][0] = initial_len;
        }
        Ok(t)
    }

    /// Build a complete tree from an explicit edge list (used by the Newick
    /// parser and tests). Edges must describe a valid unrooted binary tree.
    pub fn from_edges(n_taxa: usize, edges: &[(NodeId, NodeId, f64)]) -> Result<Tree> {
        if n_taxa < 3 {
            return Err(PhyloError::TooFewTaxa { found: n_taxa, required: 3 });
        }
        let n_nodes = 2 * n_taxa - 2;
        if edges.len() != 2 * n_taxa - 3 {
            return Err(PhyloError::TreeStructure(format!(
                "expected {} edges for {} taxa, got {}",
                2 * n_taxa - 3,
                n_taxa,
                edges.len()
            )));
        }
        let mut t = Tree {
            n_taxa,
            neighbors: vec![[None; 3]; n_nodes],
            lengths: vec![[0.0; 3]; n_nodes],
            n_inner_used: n_taxa - 2,
        };
        for &(a, b, len) in edges {
            if a >= n_nodes || b >= n_nodes || a == b {
                return Err(PhyloError::TreeStructure(format!("bad edge ({a}, {b})")));
            }
            t.attach(a, b, clamp_branch(len))?;
        }
        t.validate()?;
        Ok(t)
    }

    /// Serialize the tree's **exact** internal representation: arena size,
    /// neighbor-slot order, and branch lengths as raw `f64` bit patterns.
    ///
    /// Newick round trips and [`Tree::from_edges`] only preserve the tree up
    /// to structural equality; edge iteration order (and therefore SPR
    /// candidate order) depends on slot order, so checkpoint/resume needs
    /// this lossless form to replay a search bit-identically.
    ///
    /// One line per node: three `neighbor:length-bits-hex` fields, `-` for
    /// an empty slot.
    pub fn to_exact_string(&self) -> String {
        let mut out = format!("{} {}\n", self.n_taxa, self.n_inner_used);
        for (nbrs, lens) in self.neighbors.iter().zip(&self.lengths) {
            for slot in 0..3 {
                if slot > 0 {
                    out.push(' ');
                }
                match nbrs[slot] {
                    Some(n) => {
                        let _ = write!(out, "{}:{:016x}", n, lens[slot].to_bits());
                    }
                    None => out.push('-'),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Reconstruct a tree from [`Tree::to_exact_string`] output. The result
    /// is bit-identical to the serialized tree: same slot order, same branch
    /// length bits.
    pub fn from_exact_string(text: &str) -> Result<Tree> {
        let bad = |line: usize, message: String| PhyloError::Parse {
            format: "exact-tree",
            line,
            message,
        };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| bad(0, "empty input".into()))?;
        let mut it = header.split_whitespace();
        let n_taxa: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad(1, "header must start with the taxon count".into()))?;
        let n_inner_used: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad(1, "header must contain the inner-node count".into()))?;
        if n_taxa < 3 {
            return Err(PhyloError::TooFewTaxa { found: n_taxa, required: 3 });
        }
        let n_nodes = 2 * n_taxa - 2;
        let mut neighbors = vec![[None; 3]; n_nodes];
        let mut lengths = vec![[0.0f64; 3]; n_nodes];
        for node in 0..n_nodes {
            let (lineno, line) = lines
                .next()
                .ok_or_else(|| bad(node + 1, format!("expected {n_nodes} node lines")))?;
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 3 {
                return Err(bad(lineno + 1, format!("expected 3 slots, got {}", fields.len())));
            }
            for (slot, field) in fields.iter().enumerate() {
                if *field == "-" {
                    continue;
                }
                let (nbr, bits) = field
                    .split_once(':')
                    .ok_or_else(|| bad(lineno + 1, format!("malformed slot {field:?}")))?;
                let nbr: usize =
                    nbr.parse().map_err(|_| bad(lineno + 1, format!("bad neighbor id {nbr:?}")))?;
                if nbr >= n_nodes {
                    return Err(bad(lineno + 1, format!("neighbor {nbr} out of range")));
                }
                let bits = u64::from_str_radix(bits, 16)
                    .map_err(|_| bad(lineno + 1, format!("bad length bits {bits:?}")))?;
                neighbors[node][slot] = Some(nbr);
                lengths[node][slot] = f64::from_bits(bits);
            }
        }
        let t = Tree { n_taxa, neighbors, lengths, n_inner_used };
        t.validate()?;
        Ok(t)
    }

    /// A uniformly random topology built by random stepwise addition, with
    /// branch lengths drawn from `Exp(mean = mean_branch)`.
    pub fn random<R: Rng>(n_taxa: usize, mean_branch: f64, rng: &mut R) -> Result<Tree> {
        let mut t = Tree::initial_triplet(n_taxa, mean_branch)?;
        for tip in 3..n_taxa {
            let edges = t.edges();
            let (a, b) = edges[rng.gen_range(0..edges.len())];
            t.add_taxon_on_edge(tip, (a, b), mean_branch)?;
        }
        // Randomize branch lengths.
        for (a, b) in t.edges() {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t.set_branch_length(a, b, clamp_branch(-mean_branch * u.ln()));
        }
        t.validate()?;
        Ok(t)
    }

    /// Number of taxa (tips).
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Total nodes in the arena (tips + all inner slots, used or not).
    pub fn n_nodes(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of taxa currently attached (during stepwise addition this is
    /// less than `n_taxa`).
    pub fn n_attached_taxa(&self) -> usize {
        self.n_inner_used + 2
    }

    /// True if the node is a tip (taxon).
    #[inline]
    pub fn is_tip(&self, node: NodeId) -> bool {
        node < self.n_taxa
    }

    /// Degree of a node (0 if detached).
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors[node].iter().filter(|n| n.is_some()).count()
    }

    /// Neighbors of a node with branch lengths.
    pub fn neighbors_of(&self, node: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.neighbors[node]
            .iter()
            .zip(self.lengths[node].iter())
            .filter_map(|(n, &l)| n.map(|id| (id, l)))
    }

    /// The neighbors of an inner node other than `except`.
    pub fn other_neighbors(&self, node: NodeId, except: NodeId) -> [(NodeId, f64); 2] {
        let mut out = [(usize::MAX, 0.0); 2];
        let mut i = 0;
        for (n, l) in self.neighbors_of(node) {
            if n != except {
                assert!(i < 2, "node {node} has more than 3 neighbors?");
                out[i] = (n, l);
                i += 1;
            }
        }
        assert_eq!(i, 2, "node {node} is not an inner node with neighbor {except}");
        out
    }

    /// Branch length between two adjacent nodes.
    pub fn branch_length(&self, a: NodeId, b: NodeId) -> f64 {
        self.slot_of(a, b)
            .map(|s| self.lengths[a][s])
            .unwrap_or_else(|| panic!("nodes {a} and {b} are not adjacent"))
    }

    /// True if two nodes are adjacent.
    pub fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.slot_of(a, b).is_some()
    }

    /// Set the branch length between two adjacent nodes (kept symmetric).
    pub fn set_branch_length(&mut self, a: NodeId, b: NodeId, len: f64) {
        let len = clamp_branch(len);
        let sa = self.slot_of(a, b).expect("nodes not adjacent");
        let sb = self.slot_of(b, a).expect("adjacency must be symmetric");
        self.lengths[a][sa] = len;
        self.lengths[b][sb] = len;
    }

    /// All branches of the currently attached tree, canonically ordered.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(2 * self.n_taxa - 3);
        self.edges_into(&mut out);
        out
    }

    /// [`Self::edges`] into a caller-owned buffer — no allocation once the
    /// buffer has grown to capacity, for steady-state search loops.
    pub fn edges_into(&self, out: &mut Vec<Edge>) {
        out.clear();
        for a in 0..self.n_nodes() {
            for (b, _) in self.neighbors_of(a) {
                if a < b {
                    out.push((a, b));
                }
            }
        }
    }

    /// The first edge in [`Self::edges`]' canonical order, without
    /// allocating — a stable virtual-root choice for evaluation.
    pub fn first_edge(&self) -> Edge {
        for a in 0..self.n_nodes() {
            for (b, _) in self.neighbors_of(a) {
                if a < b {
                    return (a, b);
                }
            }
        }
        panic!("tree has no attached edges");
    }

    /// Insert taxon `tip` on edge `(a, b)`: a new inner node `v` splits the
    /// edge, and `tip` hangs off `v` with branch length `tip_len`.
    /// Returns the junction node.
    pub fn add_taxon_on_edge(&mut self, tip: NodeId, (a, b): Edge, tip_len: f64) -> Result<NodeId> {
        if !self.is_tip(tip) || self.degree(tip) != 0 {
            return Err(PhyloError::TreeStructure(format!("node {tip} is not a detached tip")));
        }
        let v = self.alloc_inner()?;
        let old_len = self.branch_length(a, b);
        self.detach(a, b);
        let half = clamp_branch(old_len * 0.5);
        self.attach(a, v, half)?;
        self.attach(v, b, half)?;
        self.attach(v, tip, clamp_branch(tip_len))?;
        Ok(v)
    }

    /// Remove the subtree hanging from `s` across the branch `(s, v)`:
    /// detaches `s` from the junction `v`, dissolves `v` by joining its two
    /// remaining neighbors `(a, b)` with length `len(a,v) + len(v,b)`.
    ///
    /// Returns `(v, (a, b), lengths)` — everything needed to undo the prune
    /// or to regraft elsewhere. `v` is left detached for reuse by
    /// [`Tree::regraft`].
    pub fn prune(&mut self, s: NodeId, v: NodeId) -> Result<PrunedSubtree> {
        if !self.adjacent(s, v) {
            return Err(PhyloError::TreeStructure(format!("{s} and {v} are not adjacent")));
        }
        if self.is_tip(v) {
            return Err(PhyloError::TreeStructure(format!("junction {v} must be an inner node")));
        }
        let prune_len = self.branch_length(s, v);
        let [(a, la), (b, lb)] = self.other_neighbors(v, s);
        self.detach(s, v);
        self.detach(a, v);
        self.detach(b, v);
        self.attach(a, b, clamp_branch(la + lb))?;
        // NOTE: merged_edge keeps (a, b) in the same order as (la, lb) so
        // that undo_prune restores each length to the correct side.
        Ok(PrunedSubtree { root: s, junction: v, merged_edge: (a, b), la, lb, prune_len })
    }

    /// Regraft a pruned subtree onto edge `(x, y)`: the junction node splits
    /// the edge and the subtree root is re-attached with its original prune
    /// branch length.
    pub fn regraft(&mut self, pruned: &PrunedSubtree, (x, y): Edge) -> Result<()> {
        let v = pruned.junction;
        if self.degree(v) != 0 {
            return Err(PhyloError::TreeStructure(format!("junction {v} is still attached")));
        }
        if !self.adjacent(x, y) {
            return Err(PhyloError::TreeStructure(format!("({x}, {y}) is not an edge")));
        }
        let old_len = self.branch_length(x, y);
        self.detach(x, y);
        let half = clamp_branch(old_len * 0.5);
        self.attach(x, v, half)?;
        self.attach(v, y, half)?;
        self.attach(v, pruned.root, clamp_branch(pruned.prune_len))?;
        Ok(())
    }

    /// Undo a prune exactly: restores the junction on the merged edge with
    /// the original branch lengths.
    pub fn undo_prune(&mut self, pruned: &PrunedSubtree) -> Result<()> {
        let (a, b) = pruned.merged_edge;
        let v = pruned.junction;
        if !self.adjacent(a, b) {
            return Err(PhyloError::TreeStructure(format!(
                "merged edge ({a}, {b}) no longer exists"
            )));
        }
        self.detach(a, b);
        self.attach(a, v, clamp_branch(pruned.la))?;
        self.attach(v, b, clamp_branch(pruned.lb))?;
        self.attach(v, pruned.root, clamp_branch(pruned.prune_len))?;
        Ok(())
    }

    /// Nearest-neighbor interchange across the internal edge `(u, v)`:
    /// swaps one subtree of `u` with one subtree of `v`. `swap` selects
    /// which of the two possible interchanges to apply (0 or 1).
    pub fn nni(&mut self, u: NodeId, v: NodeId, swap: usize) -> Result<()> {
        if self.is_tip(u) || self.is_tip(v) || !self.adjacent(u, v) {
            return Err(PhyloError::TreeStructure(format!(
                "NNI requires an internal edge, got ({u}, {v})"
            )));
        }
        let [(a, la), _] = self.other_neighbors(u, v);
        let others_v = self.other_neighbors(v, u);
        let (c, lc) = others_v[swap.min(1)];
        // Swap a (child of u) with c (child of v).
        self.detach(u, a);
        self.detach(v, c);
        self.attach(u, c, clamp_branch(lc))?;
        self.attach(v, a, clamp_branch(la))?;
        Ok(())
    }

    /// Nodes in the subtree on `root`'s side of the branch `(root, away)`,
    /// i.e. everything reachable from `root` without crossing to `away`.
    pub fn subtree_nodes(&self, root: NodeId, away: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![(root, away)];
        while let Some((node, parent)) = stack.pop() {
            out.push(node);
            for (n, _) in self.neighbors_of(node) {
                if n != parent {
                    stack.push((n, node));
                }
            }
        }
        out
    }

    /// Edges within `radius` hops of the node `from`, excluding edges
    /// incident to `exclude` — the SPR candidate-target enumeration
    /// (RAxML's "rearrangement region").
    pub fn edges_within_radius(
        &self,
        from: NodeId,
        radius: usize,
        exclude: &[NodeId],
    ) -> Vec<Edge> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.n_nodes()];
        for &e in exclude {
            seen[e] = true;
        }
        let mut frontier = vec![from];
        seen[from] = true;
        for _ in 0..radius {
            let mut next = Vec::new();
            for &node in &frontier {
                for (n, _) in self.neighbors_of(node) {
                    if !seen[n] {
                        seen[n] = true;
                        out.push(edge(node, n));
                        next.push(n);
                    }
                }
            }
            frontier = next;
        }
        out
    }

    /// Tips in the subtree on `root`'s side of `(root, away)`.
    pub fn subtree_tips(&self, root: NodeId, away: NodeId) -> Vec<NodeId> {
        self.subtree_nodes(root, away).into_iter().filter(|&n| self.is_tip(n)).collect()
    }

    /// Sum of all branch lengths (the tree length — a standard summary
    /// statistic of an inferred phylogeny).
    pub fn total_length(&self) -> f64 {
        self.edges().iter().map(|&(a, b)| self.branch_length(a, b)).sum()
    }

    /// Patristic distance: the sum of branch lengths along the unique path
    /// between two nodes. Panics if either node is detached.
    pub fn path_length(&self, from: NodeId, to: NodeId) -> f64 {
        if from == to {
            return 0.0;
        }
        // BFS with distance accumulation.
        let mut dist = vec![f64::NAN; self.n_nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[from] = 0.0;
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            if n == to {
                return dist[n];
            }
            for (m, len) in self.neighbors_of(n) {
                if dist[m].is_nan() {
                    dist[m] = dist[n] + len;
                    queue.push_back(m);
                }
            }
        }
        panic!("no path between {from} and {to} (detached node?)");
    }

    /// Structural validation: degrees, symmetry, connectivity, length
    /// agreement. Cheap enough to run in debug assertions and tests.
    pub fn validate(&self) -> Result<()> {
        let attached_tips: Vec<NodeId> = (0..self.n_taxa).filter(|&t| self.degree(t) > 0).collect();
        for &t in &attached_tips {
            if self.degree(t) != 1 {
                return Err(PhyloError::TreeStructure(format!(
                    "tip {t} has degree {}",
                    self.degree(t)
                )));
            }
        }
        for inner in self.n_taxa..self.n_nodes() {
            let d = self.degree(inner);
            if d != 0 && d != 3 {
                return Err(PhyloError::TreeStructure(format!(
                    "inner node {inner} has degree {d}"
                )));
            }
        }
        // Symmetry of adjacency and lengths.
        for a in 0..self.n_nodes() {
            for (b, l) in self.neighbors_of(a) {
                let back = self.slot_of(b, a).ok_or_else(|| {
                    PhyloError::TreeStructure(format!("asymmetric edge ({a}, {b})"))
                })?;
                if (self.lengths[b][back] - l).abs() > 1e-15 {
                    return Err(PhyloError::TreeStructure(format!(
                        "length mismatch on edge ({a}, {b})"
                    )));
                }
                if !(MIN_BRANCH..=MAX_BRANCH).contains(&l) {
                    return Err(PhyloError::TreeStructure(format!(
                        "branch length {l} out of range on ({a}, {b})"
                    )));
                }
            }
        }
        // Connectivity over attached nodes.
        if let Some(&start) = attached_tips.first() {
            let mut seen = vec![false; self.n_nodes()];
            let mut stack = vec![start];
            seen[start] = true;
            let mut count = 0;
            while let Some(n) = stack.pop() {
                count += 1;
                for (m, _) in self.neighbors_of(n) {
                    if !seen[m] {
                        seen[m] = true;
                        stack.push(m);
                    }
                }
            }
            let attached_total = (0..self.n_nodes()).filter(|&n| self.degree(n) > 0).count();
            if count != attached_total {
                return Err(PhyloError::TreeStructure(format!(
                    "tree is disconnected: reached {count} of {attached_total} nodes"
                )));
            }
        }
        Ok(())
    }

    /// Serialize to Newick, rooted at the first inner node (trifurcation),
    /// with the given taxon names.
    pub fn to_newick(&self, names: &[String]) -> String {
        assert_eq!(names.len(), self.n_taxa, "need one name per taxon");
        let root = self.n_taxa; // first inner node
        let mut s = String::new();
        s.push('(');
        let kids: Vec<(NodeId, f64)> = self.neighbors_of(root).collect();
        for (i, &(child, len)) in kids.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            self.write_newick_rec(child, root, len, names, &mut s);
        }
        s.push_str(");");
        s
    }

    fn write_newick_rec(
        &self,
        node: NodeId,
        parent: NodeId,
        len: f64,
        names: &[String],
        out: &mut String,
    ) {
        if self.is_tip(node) {
            let _ = write!(out, "{}:{:.9}", names[node], len);
        } else {
            out.push('(');
            let mut first = true;
            for (child, clen) in self.neighbors_of(node) {
                if child == parent {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                self.write_newick_rec(child, node, clen, names, out);
            }
            let _ = write!(out, "):{:.9}", len);
        }
    }

    // ---- internal plumbing ----

    fn slot_of(&self, a: NodeId, b: NodeId) -> Option<usize> {
        self.neighbors[a].iter().position(|&n| n == Some(b))
    }

    fn free_slot(&self, a: NodeId) -> Option<usize> {
        let limit = if self.is_tip(a) { 1 } else { 3 };
        self.neighbors[a][..limit].iter().position(|n| n.is_none())
    }

    fn attach(&mut self, a: NodeId, b: NodeId, len: f64) -> Result<()> {
        let sa = self.free_slot(a).ok_or_else(|| {
            PhyloError::TreeStructure(format!("node {a} has no free neighbor slot"))
        })?;
        let sb = self.free_slot(b).ok_or_else(|| {
            PhyloError::TreeStructure(format!("node {b} has no free neighbor slot"))
        })?;
        self.neighbors[a][sa] = Some(b);
        self.lengths[a][sa] = len;
        self.neighbors[b][sb] = Some(a);
        self.lengths[b][sb] = len;
        Ok(())
    }

    fn detach(&mut self, a: NodeId, b: NodeId) {
        let sa = self.slot_of(a, b).expect("detach: not adjacent");
        let sb = self.slot_of(b, a).expect("detach: asymmetric");
        self.neighbors[a][sa] = None;
        self.neighbors[b][sb] = None;
    }

    fn alloc_inner(&mut self) -> Result<NodeId> {
        let id = self.n_taxa + self.n_inner_used;
        if id >= self.n_nodes() {
            return Err(PhyloError::TreeStructure("inner node arena exhausted".into()));
        }
        self.n_inner_used += 1;
        Ok(id)
    }
}

impl PartialEq for Tree {
    fn eq(&self, other: &Tree) -> bool {
        if self.n_taxa != other.n_taxa || self.n_nodes() != other.n_nodes() {
            return false;
        }
        for node in 0..self.n_nodes() {
            let mut a: Vec<(NodeId, u64)> =
                self.neighbors_of(node).map(|(n, l)| (n, l.to_bits())).collect();
            let mut b: Vec<(NodeId, u64)> =
                other.neighbors_of(node).map(|(n, l)| (n, l.to_bits())).collect();
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                return false;
            }
        }
        true
    }
}

/// Bookkeeping returned by [`Tree::prune`], consumed by [`Tree::regraft`] or
/// [`Tree::undo_prune`].
#[derive(Debug, Clone, Copy)]
pub struct PrunedSubtree {
    /// Root of the detached subtree.
    pub root: NodeId,
    /// The junction node that was dissolved (now detached, reused on regraft).
    pub junction: NodeId,
    /// The edge created by merging the junction's two remaining neighbors,
    /// ordered to match (`la`, `lb`) (not canonicalized).
    pub merged_edge: (NodeId, NodeId),
    /// Original length junction→first merged neighbor.
    pub la: f64,
    /// Original length junction→second merged neighbor.
    pub lb: f64,
    /// Original length subtree-root→junction.
    pub prune_len: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn five_taxon_tree() -> Tree {
        // Build ((0,1),(2,3),4) style tree by stepwise addition.
        let mut t = Tree::initial_triplet(5, 0.1).unwrap();
        let e = t.edges();
        t.add_taxon_on_edge(3, e[0], 0.1).unwrap();
        let e = t.edges();
        t.add_taxon_on_edge(4, e[1], 0.1).unwrap();
        t.validate().unwrap();
        t
    }

    #[test]
    fn exact_serialization_round_trips_bit_identically() {
        let mut rng = StdRng::seed_from_u64(17);
        let t = Tree::random(12, 0.1, &mut rng).unwrap();
        let text = t.to_exact_string();
        let back = Tree::from_exact_string(&text).unwrap();
        // Stronger than PartialEq (which is slot-order-insensitive): the
        // raw internals must match so edge iteration order is preserved.
        assert_eq!(t.neighbors, back.neighbors);
        for (a, b) in t.lengths.iter().zip(&back.lengths) {
            for s in 0..3 {
                assert_eq!(a[s].to_bits(), b[s].to_bits());
            }
        }
        assert_eq!(t.edges(), back.edges());
        assert_eq!(text, back.to_exact_string());
    }

    #[test]
    fn exact_deserialization_rejects_corrupt_input() {
        assert!(Tree::from_exact_string("").is_err());
        assert!(Tree::from_exact_string("5\n").is_err());
        assert!(Tree::from_exact_string("5 3\n- -\n").is_err(), "short slot line");
        assert!(Tree::from_exact_string("2 0\n- - -\n- - -\n").is_err(), "too few taxa");
        // Truncated node list.
        let t = five_taxon_tree();
        let text = t.to_exact_string();
        let truncated: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
        assert!(Tree::from_exact_string(&truncated).is_err());
        // Neighbor out of range.
        let poisoned = text.replacen("5:", "99:", 1);
        assert!(Tree::from_exact_string(&poisoned).is_err());
    }

    #[test]
    fn triplet_shape() {
        let t = Tree::initial_triplet(5, 0.1).unwrap();
        assert_eq!(t.degree(5), 3);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(3), 0); // not yet attached
        assert_eq!(t.edges().len(), 3);
        t.validate().unwrap();
    }

    #[test]
    fn too_few_taxa() {
        assert!(Tree::initial_triplet(2, 0.1).is_err());
    }

    #[test]
    fn stepwise_addition_reaches_full_size() {
        let t = five_taxon_tree();
        assert_eq!(t.edges().len(), 2 * 5 - 3);
        assert_eq!(t.n_attached_taxa(), 5);
        for tip in 0..5 {
            assert_eq!(t.degree(tip), 1, "tip {tip}");
        }
    }

    #[test]
    fn branch_length_symmetry() {
        let mut t = five_taxon_tree();
        let (a, b) = t.edges()[2];
        t.set_branch_length(a, b, 0.42);
        assert_eq!(t.branch_length(a, b), 0.42);
        assert_eq!(t.branch_length(b, a), 0.42);
    }

    #[test]
    fn branch_length_clamped() {
        let mut t = five_taxon_tree();
        let (a, b) = t.edges()[0];
        t.set_branch_length(a, b, 1e-300);
        assert_eq!(t.branch_length(a, b), MIN_BRANCH);
        t.set_branch_length(a, b, 1e9);
        assert_eq!(t.branch_length(a, b), MAX_BRANCH);
    }

    #[test]
    fn prune_then_undo_is_identity() {
        let t0 = five_taxon_tree();
        let mut t = t0.clone();
        // Prune tip 0 from its junction.
        let v = t.neighbors_of(0).next().unwrap().0;
        let pruned = t.prune(0, v).unwrap();
        assert_eq!(t.degree(0), 0);
        assert_eq!(t.degree(v), 0);
        assert_eq!(t.edges().len(), 2 * 5 - 3 - 2);
        t.undo_prune(&pruned).unwrap();
        t.validate().unwrap();
        // Same topology and lengths.
        assert_eq!(t, t0);
    }

    #[test]
    fn spr_move_preserves_validity() {
        let mut t = five_taxon_tree();
        let v = t.neighbors_of(0).next().unwrap().0;
        let pruned = t.prune(0, v).unwrap();
        // Regraft on any remaining edge not incident to the subtree.
        let target = t.edges()[0];
        t.regraft(&pruned, target).unwrap();
        t.validate().unwrap();
        assert_eq!(t.edges().len(), 2 * 5 - 3);
        assert_eq!(t.n_attached_taxa(), 5);
    }

    #[test]
    fn prune_inner_subtree() {
        let mut t = five_taxon_tree();
        // Find an internal edge (u, v): prune the subtree rooted at u.
        let internal: Vec<Edge> =
            t.edges().into_iter().filter(|&(a, b)| !t.is_tip(a) && !t.is_tip(b)).collect();
        assert!(!internal.is_empty());
        let (u, v) = internal[0];
        let n_sub_tips = t.subtree_tips(u, v).len();
        let pruned = t.prune(u, v).unwrap();
        t.undo_prune(&pruned).unwrap();
        t.validate().unwrap();
        assert_eq!(t.subtree_tips(u, v).len(), n_sub_tips);
    }

    #[test]
    fn nni_swaps_subtrees() {
        let mut t = five_taxon_tree();
        let internal: Vec<Edge> =
            t.edges().into_iter().filter(|&(a, b)| !t.is_tip(a) && !t.is_tip(b)).collect();
        let (u, v) = internal[0];
        let tips_before = t.subtree_tips(u, v);
        t.nni(u, v, 0).unwrap();
        t.validate().unwrap();
        let tips_after = t.subtree_tips(u, v);
        assert_ne!(tips_before, tips_after, "NNI must change the split");
        assert_eq!(t.edges().len(), 7);
    }

    #[test]
    fn nni_rejects_tip_edges() {
        let mut t = five_taxon_tree();
        let v = t.neighbors_of(0).next().unwrap().0;
        assert!(t.nni(0, v, 0).is_err());
    }

    #[test]
    fn subtree_enumeration() {
        let t = five_taxon_tree();
        let v = t.neighbors_of(0).next().unwrap().0;
        // Subtree of tip 0 away from v is just {0}.
        assert_eq!(t.subtree_nodes(0, v), vec![0]);
        // The complement contains every other attached node.
        let comp = t.subtree_nodes(v, 0);
        assert_eq!(comp.len(), (0..t.n_nodes()).filter(|&n| t.degree(n) > 0).count() - 1);
    }

    #[test]
    fn radius_limited_edge_enumeration() {
        let t = five_taxon_tree();
        let all = t.edges();
        let v = t.neighbors_of(4).next().unwrap().0;
        let within = t.edges_within_radius(v, 10, &[4]);
        // Everything except tip 4's pendant edge is reachable.
        assert_eq!(within.len(), all.len() - 1);
        let near = t.edges_within_radius(v, 1, &[4]);
        assert!(near.len() < within.len());
        assert_eq!(t.edges_within_radius(v, 0, &[4]).len(), 0);
    }

    #[test]
    fn random_trees_are_valid_and_distinct() {
        let mut rng = StdRng::seed_from_u64(99);
        let a = Tree::random(12, 0.1, &mut rng).unwrap();
        let b = Tree::random(12, 0.1, &mut rng).unwrap();
        a.validate().unwrap();
        b.validate().unwrap();
        assert_eq!(a.edges().len(), 21);
        assert_ne!(a, b, "two random trees should differ");
    }

    #[test]
    fn total_and_path_lengths() {
        let mut t = five_taxon_tree();
        for (a, b) in t.edges() {
            t.set_branch_length(a, b, 0.25);
        }
        assert!((t.total_length() - 7.0 * 0.25).abs() < 1e-12);
        // Path between adjacent nodes is the branch length.
        let (a, b) = t.edges()[0];
        assert!((t.path_length(a, b) - 0.25).abs() < 1e-12);
        // Path to self is zero; paths are symmetric.
        assert_eq!(t.path_length(3, 3), 0.0);
        assert!((t.path_length(0, 4) - t.path_length(4, 0)).abs() < 1e-12);
        // Tip-to-tip paths cross at least two branches.
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert!(t.path_length(i, j) >= 0.5 - 1e-12, "({i},{j})");
            }
        }
        // Triangle inequality on the tree metric.
        assert!(t.path_length(0, 2) <= t.path_length(0, 4) + t.path_length(4, 2) + 1e-12);
    }

    #[test]
    fn newick_output_contains_all_names() {
        let t = five_taxon_tree();
        let names: Vec<String> = (0..5).map(|i| format!("taxon{i}")).collect();
        let nwk = t.to_newick(&names);
        for name in &names {
            assert!(nwk.contains(name.as_str()), "{nwk}");
        }
        assert!(nwk.ends_with(");"));
        assert_eq!(nwk.matches(',').count(), 4);
    }

    #[test]
    fn from_edges_round_trip() {
        let t = five_taxon_tree();
        let list: Vec<(NodeId, NodeId, f64)> =
            t.edges().into_iter().map(|(a, b)| (a, b, t.branch_length(a, b))).collect();
        let t2 = Tree::from_edges(5, &list).unwrap();
        let mut e1 = t.edges();
        let mut e2 = t2.edges();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
        assert_eq!(t, t2);
    }

    #[test]
    fn from_edges_rejects_garbage() {
        assert!(Tree::from_edges(3, &[(0, 1, 0.1)]).is_err()); // wrong count
        assert!(Tree::from_edges(3, &[(0, 0, 0.1), (1, 3, 0.1), (2, 3, 0.1)]).is_err());
        // self edge
    }
}
