//! Shared fixtures and report printers for the benchmark suite and the
//! table/figure regeneration binaries.
//!
//! Every helper that runs an experiment driver propagates its
//! [`ExperimentError`]; the binaries funnel through [`or_exit`] so a bad
//! workload prints a diagnosis and exits nonzero instead of unwinding.

use cellsim::cost::CostModel;
use raxml_cell::error::ExperimentError;
use raxml_cell::experiment::{
    capture_workload, profile_breakdown, run_figure3, run_ladder, run_table8, Figure3, Workload,
    WorkloadSpec,
};
use raxml_cell::report::{format_comparison, shape_deviation, PAPER_PROFILE};
use raxml_cell::sched::DesParams;

/// Unwrap a driver result in a binary: print the error and exit nonzero.
pub fn or_exit<T>(result: Result<T, ExperimentError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Capture the `42_SC`-equivalent workload (a full traced inference on the
/// 42 × 1167 synthetic alignment). This is the expensive step — call once
/// and reuse.
pub fn aln42_workload() -> Result<Workload, ExperimentError> {
    capture_workload(&WorkloadSpec::aln42())
}

/// Capture a reduced workload for quick runs.
pub fn quick_workload() -> Result<Workload, ExperimentError> {
    capture_workload(&WorkloadSpec::test_mid())
}

/// Regenerate and print every table and the figure. Returns the full text.
pub fn run_all_tables(workload: &Workload) -> Result<String, ExperimentError> {
    let model = CostModel::paper_calibrated();
    let params = DesParams::default();
    let mut out = String::new();

    out.push_str(&format!(
        "workload: {} kernel invocations, {} patterns, final lnL {:.2}\n",
        workload.events.len(),
        workload.n_patterns,
        workload.log_likelihood
    ));
    out.push_str(&profile_text(workload, &model)?);
    out.push('\n');

    for level in run_ladder(workload, &model)? {
        out.push_str(&format_comparison(level.label, &level.rows));
        out.push_str(&format!(
            "  [workload-scaling shape deviation vs paper: {:.1}%]\n\n",
            shape_deviation(&level.rows) * 100.0
        ));
    }

    let t8 = run_table8(workload, &model, &params)?;
    out.push_str(&format_comparison("MGPS dynamic scheduler (Table 8)", &t8));
    out.push_str(&format!(
        "  [shape deviation vs paper: {:.1}%]\n\n",
        shape_deviation(&t8) * 100.0
    ));

    out.push_str(&figure3_text(&run_figure3(workload, &model, &params)?));
    Ok(out)
}

/// §5.2-style profile report text.
pub fn profile_text(workload: &Workload, model: &CostModel) -> Result<String, ExperimentError> {
    let p = profile_breakdown(workload, model)?;
    let mut out = String::from("profile (PPE pricing, paper §5.2 reference in parens):\n");
    let names = ["newview", "makenewz", "evaluate"];
    for (i, name) in names.iter().enumerate() {
        out.push_str(&format!(
            "  {:<9} {:>6.2}%  (paper: {:.2}%)\n",
            name,
            p.fractions[i] * 100.0,
            PAPER_PROFILE[i].1 * 100.0
        ));
    }
    out.push_str(&format!(
        "  other     {:>6.2}%  (paper: 1.23%)\n  nested newview fraction: {:.1}% | mean newview FLOPs: {:.0} (paper: ~25,554 ops/invocation)\n",
        p.fractions[3] * 100.0,
        p.nested_fraction * 100.0,
        p.newview_mean_flops
    ));
    Ok(out)
}

/// Figure 3 as an aligned text series.
pub fn figure3_text(fig: &Figure3) -> String {
    let mut out = String::from(
        "Figure 3 — execution time [s] vs number of bootstraps\n  bootstraps      Cell(MGPS)      IBM Power5      Intel Xeon\n",
    );
    for (i, &n) in fig.bootstraps.iter().enumerate() {
        out.push_str(&format!(
            "  {:>10} {:>15.2} {:>15.2} {:>15.2}\n",
            n, fig.cell[i], fig.power5[i], fig.xeon[i]
        ));
    }
    out.push_str(&format!(
        "  ranking at {} bootstraps: Cell < Power5 < Xeon — Power5/Cell = {:.2} (paper: ~1.10), Xeon/Cell = {:.2} (paper: >2)\n",
        fig.bootstraps[fig.bootstraps.len() - 1],
        fig.power5.last().unwrap() / fig.cell.last().unwrap(),
        fig.xeon.last().unwrap() / fig.cell.last().unwrap(),
    ));
    out
}

/// Text for one ladder level (0 = Table 1a … 7 = Table 7).
pub fn ladder_level_text(workload: &Workload, level: usize) -> Result<String, ExperimentError> {
    let model = CostModel::paper_calibrated();
    let ladder = run_ladder(workload, &model)?;
    let l = &ladder[level];
    let mut out = format_comparison(l.label, &l.rows);
    out.push_str(&format!(
        "  [workload-scaling shape deviation vs paper: {:.1}%]\n",
        shape_deviation(&l.rows) * 100.0
    ));
    Ok(out)
}

/// Text for Table 8 (MGPS).
pub fn table8_text(workload: &Workload) -> Result<String, ExperimentError> {
    let model = CostModel::paper_calibrated();
    let t8 = run_table8(workload, &model, &DesParams::default())?;
    let mut out = format_comparison("MGPS dynamic scheduler (Table 8)", &t8);
    out.push_str(&format!("  [shape deviation vs paper: {:.1}%]\n", shape_deviation(&t8) * 100.0));
    Ok(out)
}

/// Utilization report for an MGPS run at a given bootstrap count (the
/// simulator's answer to the paper's decrementer measurements).
pub fn mgps_utilization_text(workload: &Workload, n_bootstraps: usize) -> String {
    use raxml_cell::config::OptConfig;
    use raxml_cell::offload::price_trace;
    use raxml_cell::sched::mgps_makespan;
    let model = CostModel::paper_calibrated();
    let priced = price_trace(&workload.events, &model, &OptConfig::fully_optimized());
    let out = mgps_makespan(&priced, n_bootstraps, &model, &DesParams::default());
    // Component composition comes from the priced trace (the DES tracks
    // busy time only); one bootstrap's worth, so fractions are exact.
    let t = &priced.totals;
    let spe_total = (t.loop_cycles + t.cond_cycles + t.exp_cycles + t.dma_stall + t.comm) as f64;
    format!(
        "MGPS utilization at {n_bootstraps} bootstraps:\n{}  SPE work composition: loops {:.1}% | exp {:.1}% | conditionals {:.1}% | DMA {:.1}% | comm {:.1}%\n",
        out.stats.report(model.clock_hz),
        100.0 * t.loop_cycles as f64 / spe_total,
        100.0 * t.exp_cycles as f64 / spe_total,
        100.0 * t.cond_cycles as f64 / spe_total,
        100.0 * t.dma_stall as f64 / spe_total,
        100.0 * t.comm as f64 / spe_total,
    )
}

/// Text for Figure 3.
pub fn figure3_text_for(workload: &Workload) -> Result<String, ExperimentError> {
    let model = CostModel::paper_calibrated();
    Ok(figure3_text(&run_figure3(workload, &model, &DesParams::default())?))
}

/// Sweep uniform fault rates and a dead-SPE scenario across the DES
/// schedulers, reporting makespan degradation and what the recovery
/// machinery (retries, re-dispatch, blacklisting, PPE degradation) did.
pub fn fault_study_text(workload: &Workload, n_jobs: usize) -> String {
    use cellsim::fault::FaultPlan;
    use raxml_cell::config::{OptConfig, Scheduler};
    use raxml_cell::offload::price_trace;
    use raxml_cell::report::{format_fault_table, FaultRow};
    use raxml_cell::sched::{schedule_makespan, schedule_makespan_with_faults};

    let model = CostModel::paper_calibrated();
    let params = DesParams::default();
    let priced = price_trace(&workload.events, &model, &OptConfig::fully_optimized());
    let schedulers: [(Scheduler, &str); 3] = [
        (Scheduler::Edtlp, "EDTLP"),
        (Scheduler::Llp { workers: 2 }, "LLP/2"),
        (Scheduler::Mgps, "MGPS"),
    ];

    let mut out = String::new();
    let mut rows = Vec::new();
    for &(sched, label) in &schedulers {
        let clean = schedule_makespan(sched, &priced, n_jobs, &model, &params);
        for rate in [0.01, 0.05, 0.2] {
            let o = schedule_makespan_with_faults(
                sched,
                &priced,
                n_jobs,
                &model,
                &params,
                &FaultPlan::uniform(29, rate),
            );
            rows.push(FaultRow {
                scheduler: label.to_string(),
                fault_rate: rate,
                makespan: o.makespan,
                clean_makespan: clean,
                report: o.faults,
            });
        }
    }
    out.push_str(&format_fault_table(
        &format!("Fault-rate sweep ({n_jobs} bootstraps, uniform plan, seed 29)"),
        &rows,
    ));

    let mut rows = Vec::new();
    for &(sched, label) in &schedulers {
        let clean = schedule_makespan(sched, &priced, n_jobs, &model, &params);
        let plan = FaultPlan::none().with_death(0, clean / 4).with_death(3, clean / 2);
        let o = schedule_makespan_with_faults(sched, &priced, n_jobs, &model, &params, &plan);
        rows.push(FaultRow {
            scheduler: label.to_string(),
            fault_rate: 0.0,
            makespan: o.makespan,
            clean_makespan: clean,
            report: o.faults,
        });
    }
    out.push('\n');
    out.push_str(&format_fault_table(
        "Permanent SPE deaths (SPE 0 at 25% of clean makespan, SPE 3 at 50%)",
        &rows,
    ));
    out
}

/// Standard binary entry point: captures the workload (reduced when
/// `--quick` is passed) and returns it together with its label.
pub fn workload_from_args() -> Result<(Workload, &'static str), ExperimentError> {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        Ok((quick_workload()?, "test_mid (quick)"))
    } else {
        eprintln!("capturing the 42_SC-equivalent workload (a real traced inference)…");
        Ok((aln42_workload()?, "42_SC-equivalent (ALN42)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_tables_render() {
        let w = quick_workload().expect("capture");
        let text = run_all_tables(&w).expect("tables");
        assert!(text.contains("Table 1a"));
        assert!(text.contains("Table 8"));
        assert!(text.contains("Figure 3"));
        assert!(text.contains("newview"));
    }

    #[test]
    fn empty_trace_surfaces_as_an_error_not_a_panic() {
        let empty = Workload {
            events: Vec::new(),
            counters: Default::default(),
            log_likelihood: -1.0,
            n_patterns: 1,
        };
        assert!(run_all_tables(&empty).is_err());
        assert!(table8_text(&empty).is_err());
        assert!(figure3_text_for(&empty).is_err());
    }
}
