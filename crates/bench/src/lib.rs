//! Shared fixtures and report printers for the benchmark suite and the
//! table/figure regeneration binaries.
//!
//! Every helper that runs an experiment driver propagates its
//! [`ExperimentError`]; the binaries funnel through [`or_exit`] so a bad
//! workload prints a diagnosis and exits nonzero instead of unwinding.

pub mod artifact;
pub mod cli;
pub mod gate;
pub mod metrics_run;

use cellsim::cost::CostModel;
use raxml_cell::error::ExperimentError;
use raxml_cell::experiment::{
    capture_workload, profile_breakdown, run_figure3, run_ladder, run_table8, Figure3, Workload,
    WorkloadSpec,
};
use raxml_cell::report::{format_comparison, shape_deviation, PAPER_PROFILE};
use raxml_cell::sched::DesParams;

/// Unwrap a driver result in a binary: print the error and exit nonzero.
pub fn or_exit<T, E: std::fmt::Display>(result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Value following a `--flag value` pair on the process command line
/// (shared by every study binary).
#[deprecated(since = "0.2.0", note = "use `cli::StudyArgs`, which validates the shared flags")]
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Capture the `42_SC`-equivalent workload (a full traced inference on the
/// 42 × 1167 synthetic alignment). This is the expensive step — call once
/// and reuse.
pub fn aln42_workload() -> Result<Workload, ExperimentError> {
    capture_workload(&WorkloadSpec::aln42())
}

/// Capture a reduced workload for quick runs.
pub fn quick_workload() -> Result<Workload, ExperimentError> {
    capture_workload(&WorkloadSpec::test_mid())
}

/// Regenerate and print every table and the figure. Returns the full text.
pub fn run_all_tables(workload: &Workload) -> Result<String, ExperimentError> {
    let model = CostModel::paper_calibrated();
    let params = DesParams::default();
    let mut out = String::new();

    out.push_str(&format!(
        "workload: {} kernel invocations, {} patterns, final lnL {:.2}\n",
        workload.events.len(),
        workload.n_patterns,
        workload.log_likelihood
    ));
    out.push_str(&profile_text(workload, &model)?);
    out.push('\n');

    for level in run_ladder(workload, &model)? {
        out.push_str(&format_comparison(level.label, &level.rows));
        out.push_str(&format!(
            "  [workload-scaling shape deviation vs paper: {:.1}%]\n\n",
            shape_deviation(&level.rows) * 100.0
        ));
    }

    let t8 = run_table8(workload, &model, &params)?;
    out.push_str(&format_comparison("MGPS dynamic scheduler (Table 8)", &t8));
    out.push_str(&format!(
        "  [shape deviation vs paper: {:.1}%]\n\n",
        shape_deviation(&t8) * 100.0
    ));

    out.push_str(&figure3_text(&run_figure3(workload, &model, &params)?));
    Ok(out)
}

/// §5.2-style profile report text.
pub fn profile_text(workload: &Workload, model: &CostModel) -> Result<String, ExperimentError> {
    let p = profile_breakdown(workload, model)?;
    let mut out = String::from("profile (PPE pricing, paper §5.2 reference in parens):\n");
    let names = ["newview", "makenewz", "evaluate"];
    for (i, name) in names.iter().enumerate() {
        out.push_str(&format!(
            "  {:<9} {:>6.2}%  (paper: {:.2}%)\n",
            name,
            p.fractions[i] * 100.0,
            PAPER_PROFILE[i].1 * 100.0
        ));
    }
    out.push_str(&format!(
        "  other     {:>6.2}%  (paper: 1.23%)\n  nested newview fraction: {:.1}% | mean newview FLOPs: {:.0} (paper: ~25,554 ops/invocation)\n",
        p.fractions[3] * 100.0,
        p.nested_fraction * 100.0,
        p.newview_mean_flops
    ));
    Ok(out)
}

/// Figure 3 as an aligned text series.
pub fn figure3_text(fig: &Figure3) -> String {
    let mut out = String::from(
        "Figure 3 — execution time [s] vs number of bootstraps\n  bootstraps      Cell(MGPS)      IBM Power5      Intel Xeon\n",
    );
    for (i, &n) in fig.bootstraps.iter().enumerate() {
        out.push_str(&format!(
            "  {:>10} {:>15.2} {:>15.2} {:>15.2}\n",
            n, fig.cell[i], fig.power5[i], fig.xeon[i]
        ));
    }
    out.push_str(&format!(
        "  ranking at {} bootstraps: Cell < Power5 < Xeon — Power5/Cell = {:.2} (paper: ~1.10), Xeon/Cell = {:.2} (paper: >2)\n",
        fig.bootstraps[fig.bootstraps.len() - 1],
        fig.power5.last().unwrap() / fig.cell.last().unwrap(),
        fig.xeon.last().unwrap() / fig.cell.last().unwrap(),
    ));
    out
}

/// Text for one ladder level (0 = Table 1a … 7 = Table 7).
pub fn ladder_level_text(workload: &Workload, level: usize) -> Result<String, ExperimentError> {
    let model = CostModel::paper_calibrated();
    let ladder = run_ladder(workload, &model)?;
    let l = &ladder[level];
    let mut out = format_comparison(l.label, &l.rows);
    out.push_str(&format!(
        "  [workload-scaling shape deviation vs paper: {:.1}%]\n",
        shape_deviation(&l.rows) * 100.0
    ));
    Ok(out)
}

/// Text for Table 8 (MGPS).
pub fn table8_text(workload: &Workload) -> Result<String, ExperimentError> {
    let model = CostModel::paper_calibrated();
    let t8 = run_table8(workload, &model, &DesParams::default())?;
    let mut out = format_comparison("MGPS dynamic scheduler (Table 8)", &t8);
    out.push_str(&format!("  [shape deviation vs paper: {:.1}%]\n", shape_deviation(&t8) * 100.0));
    Ok(out)
}

/// Utilization report for an MGPS run at a given bootstrap count (the
/// simulator's answer to the paper's decrementer measurements).
pub fn mgps_utilization_text(workload: &Workload, n_bootstraps: usize) -> String {
    use cellsim::fault::FaultPlan;
    use cellsim::tracelog::TraceLog;
    use raxml_cell::config::OptConfig;
    use raxml_cell::offload::price_trace;
    use raxml_cell::sched::mgps_makespan_traced;
    let model = CostModel::paper_calibrated();
    let priced = price_trace(&workload.events, &model, &OptConfig::fully_optimized());
    let mut tlog = TraceLog::enabled();
    let out = mgps_makespan_traced(
        &priced,
        n_bootstraps,
        &model,
        &DesParams::default(),
        &FaultPlan::none(),
        &mut tlog,
    );
    // Component composition comes from the trace's counter channel: the
    // scheduler annotates every run with the per-component cycle totals it
    // actually dispatched, so the report and any exported trace agree by
    // construction. One bootstrap's worth, so fractions are exact.
    let c = |name: &str| tlog.last_counter(name).unwrap_or(0.0);
    let loops = c("trace_loop_cycles");
    let exp = c("trace_exp_cycles");
    let cond = c("trace_cond_cycles");
    let dma = c("trace_dma_stall");
    let comm = c("trace_comm");
    let spe_total = loops + exp + cond + dma + comm;
    format!(
        "MGPS utilization at {n_bootstraps} bootstraps:\n{}  SPE work composition: loops {:.1}% | exp {:.1}% | conditionals {:.1}% | DMA {:.1}% | comm {:.1}%\n",
        out.stats.report(model.clock_hz),
        100.0 * loops / spe_total,
        100.0 * exp / spe_total,
        100.0 * cond / spe_total,
        100.0 * dma / spe_total,
        100.0 * comm / spe_total,
    )
}

/// One scheduler's traced simulation of a single SPR round: the DES's own
/// accounting plus the trace-derived view and both exporter payloads.
pub struct RoundProfile {
    /// Scheduler label ("EDTLP", "LLP/2", "MGPS").
    pub label: &'static str,
    /// Full DES outcome (makespan, `SimStats`, fault report).
    pub outcome: raxml_cell::sched::SimOutcome,
    /// Totals re-derived from the emitted trace events alone.
    pub summary: cellsim::tracelog::TraceSummary,
    /// Chrome trace-event JSON (Perfetto-loadable).
    pub chrome_json: String,
    /// JSONL metrics snapshot (one object per line).
    pub metrics_jsonl: String,
}

/// Price one SPR round's kernel events (falling back to the whole trace when
/// the workload recorded no round marks) and simulate it under EDTLP, LLP/2
/// and MGPS with event tracing enabled.
pub fn profile_spr_round(workload: &Workload, n_jobs: usize) -> Vec<RoundProfile> {
    use cellsim::fault::FaultPlan;
    use cellsim::tracelog::TraceLog;
    use raxml_cell::config::{OptConfig, Scheduler};
    use raxml_cell::offload::price_trace;
    use raxml_cell::sched::schedule_makespan_traced;

    let model = CostModel::paper_calibrated();
    let params = DesParams::default();
    let events = match workload.rounds.first() {
        Some(mark) => workload.round_events(mark),
        None => &workload.events[..],
    };
    let priced = price_trace(events, &model, &OptConfig::fully_optimized());
    let schedulers: [(Scheduler, &'static str); 3] = [
        (Scheduler::Edtlp, "EDTLP"),
        (Scheduler::Llp { workers: 2 }, "LLP/2"),
        (Scheduler::Mgps, "MGPS"),
    ];
    schedulers
        .iter()
        .map(|&(sched, label)| {
            let mut tlog = TraceLog::enabled();
            let outcome = schedule_makespan_traced(
                sched,
                &priced,
                n_jobs,
                &model,
                &params,
                &FaultPlan::none(),
                &mut tlog,
            );
            tlog.round_span(0, 0, outcome.makespan);
            let summary = tlog.summary(params.n_spes);
            let chrome_json = tlog.to_chrome_trace(model.clock_hz);
            let metrics_jsonl = tlog.to_metrics_jsonl(model.clock_hz, params.n_spes);
            RoundProfile { label, outcome, summary, chrome_json, metrics_jsonl }
        })
        .collect()
}

/// Cross-check one profile: the trace-derived per-SPE utilization must match
/// the DES's `SimStats` accounting exactly, and both exporter payloads must
/// be well-formed. Returns a description of the first mismatch.
pub fn check_profile(p: &RoundProfile) -> Result<(), String> {
    let stats = &p.outcome.stats;
    if p.summary.end != p.outcome.makespan {
        return Err(format!(
            "{}: trace end {} != makespan {}",
            p.label, p.summary.end, p.outcome.makespan
        ));
    }
    if p.summary.ppe_busy != stats.ppe_busy {
        return Err(format!(
            "{}: trace PPE busy {} != stats {}",
            p.label, p.summary.ppe_busy, stats.ppe_busy
        ));
    }
    for (s, spe) in stats.spes.iter().enumerate() {
        if p.summary.spe_busy[s] != spe.busy() {
            return Err(format!(
                "{}: SPE {s} trace busy {} != stats {}",
                p.label,
                p.summary.spe_busy[s],
                spe.busy()
            ));
        }
        if p.summary.spe_stalled[s] != spe.stalled() {
            return Err(format!(
                "{}: SPE {s} trace stalled {} != stats {}",
                p.label,
                p.summary.spe_stalled[s],
                spe.stalled()
            ));
        }
        let trace_util = p.summary.utilization(s);
        let stats_util = spe.busy() as f64 / p.outcome.makespan.max(1) as f64;
        if (trace_util - stats_util).abs() > 1e-12 {
            return Err(format!(
                "{}: SPE {s} trace utilization {trace_util} != stats {stats_util}",
                p.label
            ));
        }
    }
    cellsim::tracelog::validate_json(&p.chrome_json)
        .map_err(|e| format!("{}: chrome trace invalid: {e}", p.label))?;
    cellsim::tracelog::validate_jsonl(&p.metrics_jsonl)
        .map_err(|e| format!("{}: metrics jsonl invalid: {e}", p.label))?;
    Ok(())
}

/// Human-readable per-scheduler timeline report for a profiled round: the
/// §5.2-style utilization breakdown regenerated from the trace itself.
pub fn profile_report_text(profiles: &[RoundProfile], clock_hz: f64) -> String {
    let mut out = String::from("per-scheduler timeline (trace-derived, one SPR round):\n");
    for p in profiles {
        out.push_str(&format!(
            "  {:<6} makespan {:>12} cycles ({:.3} ms) | mean SPE utilization {:>5.1}% | mean DMA stall {:>4.1}% | PPE busy {:>5.1}% | {} events\n",
            p.label,
            p.outcome.makespan,
            p.outcome.makespan as f64 / clock_hz * 1e3,
            100.0 * p.summary.mean_utilization(),
            100.0 * p.summary.mean_stall_fraction(),
            100.0 * p.summary.ppe_busy as f64 / p.outcome.makespan.max(1) as f64,
            p.summary.spe_bursts.iter().sum::<u64>(),
        ));
    }
    out
}

/// Text for Figure 3.
pub fn figure3_text_for(workload: &Workload) -> Result<String, ExperimentError> {
    let model = CostModel::paper_calibrated();
    Ok(figure3_text(&run_figure3(workload, &model, &DesParams::default())?))
}

/// Sweep uniform fault rates and a dead-SPE scenario across the DES
/// schedulers, returning the structured rows: `(rate_sweep, spe_deaths)`.
/// [`fault_study_text`] renders these as tables; the `--format json` path
/// of the `fault_study` binary flattens them into an envelope.
pub fn fault_study_rows(
    workload: &Workload,
    n_jobs: usize,
) -> (Vec<raxml_cell::report::FaultRow>, Vec<raxml_cell::report::FaultRow>) {
    use cellsim::fault::FaultPlan;
    use raxml_cell::config::{OptConfig, Scheduler};
    use raxml_cell::offload::price_trace;
    use raxml_cell::report::FaultRow;
    use raxml_cell::sched::{schedule_makespan, schedule_makespan_with_faults};

    let model = CostModel::paper_calibrated();
    let params = DesParams::default();
    let priced = price_trace(&workload.events, &model, &OptConfig::fully_optimized());
    let schedulers: [(Scheduler, &str); 3] = [
        (Scheduler::Edtlp, "EDTLP"),
        (Scheduler::Llp { workers: 2 }, "LLP/2"),
        (Scheduler::Mgps, "MGPS"),
    ];

    let mut sweep = Vec::new();
    for &(sched, label) in &schedulers {
        let clean = schedule_makespan(sched, &priced, n_jobs, &model, &params);
        for rate in [0.01, 0.05, 0.2] {
            let o = schedule_makespan_with_faults(
                sched,
                &priced,
                n_jobs,
                &model,
                &params,
                &FaultPlan::uniform(29, rate),
            );
            sweep.push(FaultRow {
                scheduler: label.to_string(),
                fault_rate: rate,
                makespan: o.makespan,
                clean_makespan: clean,
                report: o.faults,
            });
        }
    }

    let mut deaths = Vec::new();
    for &(sched, label) in &schedulers {
        let clean = schedule_makespan(sched, &priced, n_jobs, &model, &params);
        let plan = FaultPlan::none().with_death(0, clean / 4).with_death(3, clean / 2);
        let o = schedule_makespan_with_faults(sched, &priced, n_jobs, &model, &params, &plan);
        deaths.push(FaultRow {
            scheduler: label.to_string(),
            fault_rate: 0.0,
            makespan: o.makespan,
            clean_makespan: clean,
            report: o.faults,
        });
    }
    (sweep, deaths)
}

/// Sweep uniform fault rates and a dead-SPE scenario across the DES
/// schedulers, reporting makespan degradation and what the recovery
/// machinery (retries, re-dispatch, blacklisting, PPE degradation) did.
pub fn fault_study_text(workload: &Workload, n_jobs: usize) -> String {
    use raxml_cell::report::format_fault_table;

    let (sweep, deaths) = fault_study_rows(workload, n_jobs);
    let mut out = String::new();
    out.push_str(&format_fault_table(
        &format!("Fault-rate sweep ({n_jobs} bootstraps, uniform plan, seed 29)"),
        &sweep,
    ));
    out.push('\n');
    out.push_str(&format_fault_table(
        "Permanent SPE deaths (SPE 0 at 25% of clean makespan, SPE 3 at 50%)",
        &deaths,
    ));
    out
}

/// Standard binary entry point: captures the workload (reduced when
/// `--quick` is passed) and returns it together with its label.
pub fn workload_from_args() -> Result<(Workload, &'static str), ExperimentError> {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        Ok((quick_workload()?, "test_mid (quick)"))
    } else {
        eprintln!("capturing the 42_SC-equivalent workload (a real traced inference)…");
        Ok((aln42_workload()?, "42_SC-equivalent (ALN42)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_tables_render() {
        let w = quick_workload().expect("capture");
        let text = run_all_tables(&w).expect("tables");
        assert!(text.contains("Table 1a"));
        assert!(text.contains("Table 8"));
        assert!(text.contains("Figure 3"));
        assert!(text.contains("newview"));
    }

    #[test]
    fn profiled_round_trace_matches_stats_for_every_scheduler() {
        let w = quick_workload().expect("capture");
        let profiles = profile_spr_round(&w, 8);
        assert_eq!(profiles.len(), 3, "one profile per scheduler");
        for p in &profiles {
            check_profile(p).expect("trace-derived utilization must equal SimStats");
        }
        let text = profile_report_text(&profiles, CostModel::paper_calibrated().clock_hz);
        assert!(text.contains("EDTLP") && text.contains("LLP/2") && text.contains("MGPS"));
    }

    #[test]
    fn mgps_utilization_composition_comes_from_the_trace() {
        let w = quick_workload().expect("capture");
        let text = mgps_utilization_text(&w, 8);
        assert!(text.contains("SPE work composition"));
        assert!(text.contains("loops"));
        // Fractions must be finite percentages that roughly sum to 100.
        let pct: Vec<f64> = text
            .split('%')
            .filter_map(|chunk| chunk.rsplit(' ').next().and_then(|t| t.parse::<f64>().ok()))
            .collect();
        let composition: f64 = pct.iter().rev().take(5).sum();
        assert!((composition - 100.0).abs() < 0.5, "composition sums to {composition}");
    }

    #[test]
    fn empty_trace_surfaces_as_an_error_not_a_panic() {
        let empty = Workload {
            events: Vec::new(),
            counters: Default::default(),
            rounds: Vec::new(),
            log_likelihood: -1.0,
            n_patterns: 1,
        };
        assert!(run_all_tables(&empty).is_err());
        assert!(table8_text(&empty).is_err());
        assert!(figure3_text_for(&empty).is_err());
    }
}
