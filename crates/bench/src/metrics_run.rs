//! The shared wall-clock metrics measurement behind `metrics_study` and
//! `bench_gate`.
//!
//! One run: enable the global `obs` registry, push a bootstrap batch
//! through the inference farm (with the trace-log bridge and a real
//! `BootstrapStore` append per sealed job), run one small checkpointed
//! search so the durable-write histograms have data, then fold the
//! registry into a schema-versioned [`Envelope`] plus the two raw exports
//! (Prometheus text and JSONL). Both binaries call this, so "what the
//! gate measures" and "what the study reports" are the same code path by
//! construction.

use crate::artifact::Envelope;
use cellsim::tracelog::TraceLog;
use obs::HistogramSnapshot;
use phylo::checkpoint::{search_fingerprint, BootstrapStore, SearchCheckpointer};
use phylo::farm::{run_farm, FarmConfig, FarmStats};
use phylo::likelihood::LikelihoodWorkspace;
use phylo::search::{run_inference, InferenceOptions, InferenceRequest, SearchConfig};
use phylo::simulate::SimulationConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use raxml_cell::{bridge_counters_to_gauges, FarmTracer};

/// How the measurement is shaped.
#[derive(Debug, Clone)]
pub struct MetricsRunConfig {
    /// Bootstrap jobs in the farm batch.
    pub n_jobs: usize,
    /// Farm workers.
    pub n_workers: usize,
    /// Reduced alignment for smoke/CI runs.
    pub quick: bool,
}

impl MetricsRunConfig {
    /// The full study shape (what `BENCH_metrics.json` baselines use).
    pub fn full(n_jobs: usize, n_workers: usize) -> MetricsRunConfig {
        MetricsRunConfig { n_jobs, n_workers, quick: false }
    }

    /// The smoke shape: tiny alignment, tiny batch.
    pub fn smoke() -> MetricsRunConfig {
        MetricsRunConfig { n_jobs: 5, n_workers: 2, quick: true }
    }
}

impl Default for MetricsRunConfig {
    fn default() -> MetricsRunConfig {
        MetricsRunConfig::full(12, 4)
    }
}

/// Everything one measurement produced.
#[derive(Debug)]
pub struct MetricsRun {
    /// The flat, gate-comparable summary.
    pub envelope: Envelope,
    /// Prometheus text exposition of the whole registry.
    pub prometheus: String,
    /// JSONL snapshot of the whole registry.
    pub jsonl: String,
    /// The farm's own accounting, for coherence checks.
    pub stats: FarmStats,
}

/// The per-worker histogram families the farm records (name prefixes; the
/// study folds each family into one cross-worker distribution).
pub const FARM_HIST_FAMILIES: [&str; 3] =
    ["farm_queue_wait_ns", "farm_job_run_ns", "farm_seal_lag_ns"];

/// Counters the envelope carries verbatim.
const COUNTERS: [&str; 9] = [
    "farm_jobs_total",
    "farm_jobs_failed_total",
    "farm_steals_total",
    "farm_backpressure_waits_total",
    "farm_workers_died_total",
    "evaluate_patterns_total",
    "newton_patterns_total",
    "bootstrap_append_bytes_total",
    "checkpoint_bytes_total",
];

/// Run the measurement. Leaves the global registry enabled-but-reset state
/// as it found it disabled afterwards, so library callers (tests) are not
/// surprised by a hot registry.
pub fn collect_metrics(cfg: &MetricsRunConfig) -> Result<MetricsRun, String> {
    let registry = obs::global();
    let was_enabled = registry.is_enabled();
    registry.set_enabled(true);
    registry.reset();
    let result = collect_inner(cfg, registry);
    registry.set_enabled(was_enabled);
    result
}

fn collect_inner(cfg: &MetricsRunConfig, registry: &obs::Registry) -> Result<MetricsRun, String> {
    let aln = if cfg.quick {
        SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(6, 200, 3) }
            .generate()
            .alignment
    } else {
        SimulationConfig { mean_branch: 0.15, ..SimulationConfig::new(8, 400, 7) }
            .generate()
            .alignment
    };
    let search = SearchConfig::fast();

    let dir = std::env::temp_dir().join(format!("raxml-metrics-run-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    // 1. One small checkpointed search: real snapshot writes through
    //    `SearchCheckpointer::save` feed `checkpoint_write_ns`.
    let ckpt_path = dir.join("search.ckpt");
    let fp = search_fingerprint(&aln, &search, 1);
    let mut ckpt = SearchCheckpointer::new(&ckpt_path, fp);
    run_inference(
        &aln,
        &InferenceRequest::new(search.clone(), 1),
        InferenceOptions::new().with_checkpoint(&mut ckpt),
    )
    .map_err(|e| format!("checkpointed search: {e}"))?;

    // 2. The farm batch, with the trace bridge and a BootstrapStore append
    //    per sealed job (real durable writes feed `bootstrap_append_ns`).
    let mut store = BootstrapStore::open(dir.join("bootstrap.log"), fp, cfg.n_jobs)
        .map_err(|e| format!("bootstrap store: {e}"))?;
    let mut log = TraceLog::enabled();
    let mut tracer = FarmTracer::new(&mut log, 1e9);
    let seeds: Vec<u64> = (0..cfg.n_jobs as u64).map(|i| 0x0b00_7000 + i).collect();
    let farm_config = FarmConfig::new(cfg.n_workers).bounded(2 * cfg.n_workers);
    let aln_ref = &aln;
    let search_ref = &search;
    let outcome = run_farm(
        &farm_config,
        seeds,
        |_| LikelihoodWorkspace::new(),
        move |ws: &mut LikelihoodWorkspace, _idx: usize, seed: u64| {
            let owned = std::mem::take(ws);
            let mut rng = StdRng::seed_from_u64(seed);
            let replicate = aln_ref.bootstrap_replicate(&mut rng);
            let outcome = run_inference(
                &replicate,
                &InferenceRequest::new(search_ref.clone(), seed),
                InferenceOptions::new().with_workspace(owned),
            )
            .expect("un-checkpointed search on finite data cannot fail");
            *ws = outcome.workspace;
            (outcome.result.log_likelihood, outcome.result.tree.to_exact_string())
        },
        Some(&mut tracer),
        |_, sealed| {
            if let Ok((lnl, tree)) = sealed {
                store.append(*lnl, tree).expect("bootstrap append");
            }
        },
    );
    tracer.finish(&outcome.stats);
    // 3. The per-scrape bridge: trace-log counters (read through the
    //    indexed `counters_snapshot`) become registry gauges.
    bridge_counters_to_gauges(&log, registry);
    std::fs::remove_dir_all(&dir).ok();

    let stats = outcome.stats.clone();
    if stats.n_failed != 0 {
        return Err(format!("{} bootstrap jobs failed", stats.n_failed));
    }

    // 4. Raw exports, both self-validated.
    let prometheus = registry.to_prometheus_text();
    obs::validate_prometheus_text(&prometheus)
        .map_err(|e| format!("prometheus export invalid: {e}"))?;
    let jsonl = registry.to_jsonl();
    cellsim::tracelog::validate_jsonl(&jsonl).map_err(|e| format!("jsonl export invalid: {e}"))?;

    // 5. The flat envelope.
    let mut envelope = Envelope::new("metrics")
        .with_config("jobs", cfg.n_jobs)
        .with_config("workers", cfg.n_workers)
        .with_config("quick", cfg.quick)
        .with_config("taxa", aln.n_taxa())
        .with_config("patterns", aln.n_patterns());

    envelope.push_metric("farm_jobs_per_sec", stats.jobs_per_sec());
    let elapsed_s = stats.elapsed_nanos as f64 / 1e9;
    for family in FARM_HIST_FAMILIES {
        let merged = registry.merged_histogram(&format!("{family}_w"));
        push_quantiles(&mut envelope, family, &merged);
    }
    for name in
        ["evaluate_dispatch_ns", "newton_dispatch_ns", "bootstrap_append_ns", "checkpoint_write_ns"]
    {
        push_quantiles(&mut envelope, name, &registry.histogram(name).snapshot());
    }
    for name in COUNTERS {
        envelope.push_metric(name, registry.counter(name).get() as f64);
    }
    let eval_patterns = registry.counter("evaluate_patterns_total").get() as f64;
    if elapsed_s > 0.0 {
        envelope.push_metric("evaluate_patterns_per_sec", eval_patterns / elapsed_s);
    }
    envelope.push_metric("farm_jobs_per_sec_traced", registry.gauge("farm_jobs_per_sec").get());

    Ok(MetricsRun { envelope, prometheus, jsonl, stats })
}

/// Flatten one histogram's deterministic summary into envelope metrics
/// (`<name>_p50/_p90/_p99/_max/_count`; only `_p99` is gated).
fn push_quantiles(envelope: &mut Envelope, name: &str, h: &HistogramSnapshot) {
    envelope.push_metric(&format!("{name}_p50"), h.quantile(0.5) as f64);
    envelope.push_metric(&format!("{name}_p90"), h.quantile(0.9) as f64);
    envelope.push_metric(&format!("{name}_p99"), h.quantile(0.99) as f64);
    envelope.push_metric(&format!("{name}_max"), h.max as f64);
    envelope.push_metric(&format!("{name}_count"), h.count as f64);
}
