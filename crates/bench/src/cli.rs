//! Typed command-line handling shared by every study binary.
//!
//! Each study used to scan `std::env::args()` ad hoc (via the now
//! deprecated [`crate::arg_value`]); this module centralizes the common
//! surface once, with validation:
//!
//! * the shared boolean flags `--smoke`, `--quick`, `--no-artifact`;
//! * `--format text|json` (rejecting anything else up front);
//! * `--out DIR` with a per-study default;
//! * typed lookups for study-specific `--flag value` pairs, where a
//!   malformed value is a diagnosed error instead of a silently ignored
//!   `None`.
//!
//! Binaries call [`StudyArgs::parse`], which exits with a diagnosis on
//! invalid input; the fallible [`StudyArgs::from_vec`] is the testable
//! core.

use crate::artifact::OutputFormat;
use std::path::PathBuf;

/// The parsed command line of a study binary.
#[derive(Debug, Clone)]
pub struct StudyArgs {
    /// `--smoke`: tiny run plus self-checks, no root artifact.
    pub smoke: bool,
    /// `--quick`: reduced workload.
    pub quick: bool,
    /// `--no-artifact`: skip writing the root `BENCH_*.json`.
    pub no_artifact: bool,
    /// `--format text|json` (default text).
    pub format: OutputFormat,
    args: Vec<String>,
}

impl StudyArgs {
    /// Parse the process arguments; print a diagnosis and exit 2 on
    /// invalid input (e.g. an unknown `--format`).
    pub fn parse() -> StudyArgs {
        match StudyArgs::from_vec(std::env::args().skip(1).collect()) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    }

    /// The testable core of [`parse`](StudyArgs::parse); `args` excludes
    /// the program name.
    pub fn from_vec(args: Vec<String>) -> Result<StudyArgs, String> {
        let mut parsed = StudyArgs {
            smoke: false,
            quick: false,
            no_artifact: false,
            format: OutputFormat::Text,
            args,
        };
        parsed.smoke = parsed.flag("--smoke");
        parsed.quick = parsed.flag("--quick");
        parsed.no_artifact = parsed.flag("--no-artifact");
        parsed.format = match parsed.value("--format") {
            None | Some("text") => OutputFormat::Text,
            Some("json") => OutputFormat::Json,
            Some(other) => return Err(format!("--format must be text or json, got {other:?}")),
        };
        Ok(parsed)
    }

    /// True when the bare flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value following a `--flag value` pair.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// A `--flag N` pair as a `usize`; a malformed value is an error, not a
    /// silent default.
    pub fn usize_value(&self, name: &str) -> Result<Option<usize>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} wants a non-negative integer, got {v:?}")),
        }
    }

    /// A `--flag N` pair as a `u64`.
    pub fn u64_value(&self, name: &str) -> Result<Option<u64>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} wants a non-negative integer, got {v:?}")),
        }
    }

    /// The `--out` directory, or the study's default.
    pub fn out_dir(&self, default: &str) -> PathBuf {
        PathBuf::from(self.value("--out").unwrap_or(default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<StudyArgs, String> {
        StudyArgs::from_vec(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn shared_flags_and_defaults() {
        let a = parse(&[]).unwrap();
        assert!(!a.smoke && !a.quick && !a.no_artifact);
        assert!(a.format.is_text());
        assert_eq!(a.out_dir("target/x"), PathBuf::from("target/x"));

        let a = parse(&["--smoke", "--quick", "--no-artifact", "--format", "json"]).unwrap();
        assert!(a.smoke && a.quick && a.no_artifact);
        assert_eq!(a.format, OutputFormat::Json);
    }

    #[test]
    fn typed_lookups_diagnose_bad_values() {
        let a = parse(&["--jobs", "24", "--out", "somewhere", "--seed", "9"]).unwrap();
        assert_eq!(a.usize_value("--jobs").unwrap(), Some(24));
        assert_eq!(a.u64_value("--seed").unwrap(), Some(9));
        assert_eq!(a.usize_value("--workers").unwrap(), None);
        assert_eq!(a.out_dir("target/x"), PathBuf::from("somewhere"));

        let a = parse(&["--jobs", "many"]).unwrap();
        assert!(a.usize_value("--jobs").is_err());
    }

    #[test]
    fn unknown_format_is_rejected() {
        assert!(parse(&["--format", "xml"]).is_err());
    }

    #[test]
    fn value_at_end_of_args_is_none() {
        let a = parse(&["--jobs"]).unwrap();
        assert_eq!(a.value("--jobs"), None);
        assert_eq!(a.usize_value("--jobs").unwrap(), None);
    }
}
