//! The benchmark regression gate: diff a current metrics envelope against
//! a committed baseline and fail on latency or throughput regressions.
//!
//! Gating is by naming convention, so adding a metric to the study
//! automatically enrolls it:
//!
//! * names ending in `_p99` are **latency** metrics — a regression is the
//!   current value exceeding the baseline by more than the threshold;
//! * names ending in `_per_sec` are **throughput** metrics — a regression
//!   is the current value falling below the baseline by more than the
//!   threshold;
//! * everything else is informational and never gates.
//!
//! Metrics present on only one side are reported but never fail the gate
//! (new metrics must be able to land before the baseline is regenerated).
//! The default threshold is deliberately loose (50%) because these are
//! wall-clock numbers from shared CI machines; the gate exists to catch
//! "it got 2× slower", not 5% noise — and CI runs it in `--advisory`
//! mode anyway, with the hard mode available for local pre-merge checks.

use crate::artifact::Envelope;

/// Default regression threshold, percent.
pub const DEFAULT_THRESHOLD_PCT: f64 = 50.0;

/// Which direction a gated metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// `*_p99`: lower is better.
    Latency,
    /// `*_per_sec`: higher is better.
    Throughput,
}

/// The gate class of a metric name, if it is gated at all.
pub fn gate_kind(name: &str) -> Option<GateKind> {
    if name.ends_with("_p99") {
        Some(GateKind::Latency)
    } else if name.ends_with("_per_sec") {
        Some(GateKind::Throughput)
    } else {
        None
    }
}

/// One gated metric's comparison.
#[derive(Debug, Clone)]
pub struct GateCheck {
    pub name: String,
    pub kind: GateKind,
    pub baseline: f64,
    pub current: f64,
    /// Signed change in percent (positive = current is larger).
    pub change_pct: f64,
    pub regressed: bool,
}

/// The whole comparison: per-metric verdicts plus bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    pub checks: Vec<GateCheck>,
    /// Gated names present in only one envelope, or with a non-positive
    /// baseline (nothing sane to compare against).
    pub skipped: Vec<String>,
}

impl GateOutcome {
    /// True when any gated metric regressed past the threshold.
    pub fn failed(&self) -> bool {
        self.checks.iter().any(|c| c.regressed)
    }

    /// Human-readable report.
    pub fn render_text(&self, threshold_pct: f64) -> String {
        let mut out = format!(
            "benchmark gate: {} gated metrics, threshold {threshold_pct}%\n",
            self.checks.len()
        );
        out.push_str(&format!(
            "{:<32} {:>14} {:>14} {:>9}  verdict\n",
            "metric", "baseline", "current", "change"
        ));
        for c in &self.checks {
            out.push_str(&format!(
                "{:<32} {:>14.1} {:>14.1} {:>+8.1}%  {}\n",
                c.name,
                c.baseline,
                c.current,
                c.change_pct,
                if c.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for name in &self.skipped {
            out.push_str(&format!("{name:<32} (skipped: not comparable)\n"));
        }
        out.push_str(if self.failed() { "gate: FAIL\n" } else { "gate: PASS\n" });
        out
    }
}

/// Compare two envelopes' gated metrics at `threshold_pct`.
///
/// Refuses mismatched artifacts (comparing a throughput envelope against a
/// metrics envelope is always a setup bug, not a regression).
pub fn compare_envelopes(
    baseline: &Envelope,
    current: &Envelope,
    threshold_pct: f64,
) -> Result<GateOutcome, String> {
    if baseline.artifact != current.artifact {
        return Err(format!(
            "artifact mismatch: baseline {:?} vs current {:?}",
            baseline.artifact, current.artifact
        ));
    }
    let mut outcome = GateOutcome::default();
    for (name, &base) in baseline.metrics.iter().map(|(n, v)| (n, v)) {
        let Some(kind) = gate_kind(name) else {
            continue;
        };
        let Some(cur) = current.metric(name) else {
            outcome.skipped.push(name.clone());
            continue;
        };
        if base <= 0.0 {
            // A zero baseline (empty histogram, idle counter) has no
            // meaningful relative change.
            outcome.skipped.push(name.clone());
            continue;
        }
        let change_pct = (cur - base) / base * 100.0;
        let regressed = match kind {
            GateKind::Latency => change_pct > threshold_pct,
            GateKind::Throughput => change_pct < -threshold_pct,
        };
        outcome.checks.push(GateCheck {
            name: name.clone(),
            kind,
            baseline: base,
            current: cur,
            change_pct,
            regressed,
        });
    }
    for (name, _) in &current.metrics {
        if gate_kind(name).is_some() && baseline.metric(name).is_none() {
            outcome.skipped.push(name.clone());
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(metrics: &[(&str, f64)]) -> Envelope {
        let mut e = Envelope::new("metrics");
        for &(n, v) in metrics {
            e.push_metric(n, v);
        }
        e
    }

    #[test]
    fn identical_envelopes_pass() {
        let e = envelope(&[("run_ns_p99", 1000.0), ("jobs_per_sec", 50.0), ("info", 7.0)]);
        let out = compare_envelopes(&e, &e.clone(), DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(!out.failed());
        assert_eq!(out.checks.len(), 2, "info metric is not gated");
        assert!(out.render_text(50.0).contains("gate: PASS"));
    }

    #[test]
    fn doubled_p99_fails_the_gate() {
        let base = envelope(&[("run_ns_p99", 1000.0)]);
        let cur = envelope(&[("run_ns_p99", 2000.0)]);
        let out = compare_envelopes(&base, &cur, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(out.failed());
        assert_eq!(out.checks[0].change_pct, 100.0);
        assert!(out.render_text(50.0).contains("REGRESSED"));
    }

    #[test]
    fn halved_throughput_fails_the_gate() {
        let base = envelope(&[("jobs_per_sec", 100.0)]);
        let cur = envelope(&[("jobs_per_sec", 40.0)]);
        assert!(compare_envelopes(&base, &cur, DEFAULT_THRESHOLD_PCT).unwrap().failed());
    }

    #[test]
    fn improvements_never_fail() {
        let base = envelope(&[("run_ns_p99", 1000.0), ("jobs_per_sec", 50.0)]);
        let cur = envelope(&[("run_ns_p99", 10.0), ("jobs_per_sec", 5000.0)]);
        assert!(!compare_envelopes(&base, &cur, DEFAULT_THRESHOLD_PCT).unwrap().failed());
    }

    #[test]
    fn within_threshold_passes() {
        let base = envelope(&[("run_ns_p99", 1000.0), ("jobs_per_sec", 100.0)]);
        let cur = envelope(&[("run_ns_p99", 1400.0), ("jobs_per_sec", 60.0)]);
        assert!(!compare_envelopes(&base, &cur, DEFAULT_THRESHOLD_PCT).unwrap().failed());
    }

    #[test]
    fn missing_and_zero_baselines_are_skipped_not_failed() {
        let base = envelope(&[("gone_ns_p99", 1000.0), ("idle_ns_p99", 0.0)]);
        let cur = envelope(&[("new_ns_p99", 5.0), ("idle_ns_p99", 50.0)]);
        let out = compare_envelopes(&base, &cur, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(!out.failed());
        assert!(out.checks.is_empty());
        assert_eq!(out.skipped.len(), 3);
    }

    #[test]
    fn artifact_mismatch_is_an_error() {
        let mut other = envelope(&[]);
        other.artifact = "throughput".to_string();
        assert!(compare_envelopes(&envelope(&[]), &other, 50.0).is_err());
    }

    #[test]
    fn gate_kind_classification() {
        assert_eq!(gate_kind("x_ns_p99"), Some(GateKind::Latency));
        assert_eq!(gate_kind("jobs_per_sec"), Some(GateKind::Throughput));
        assert_eq!(gate_kind("x_ns_p50"), None);
        assert_eq!(gate_kind("jobs_total"), None);
    }
}
