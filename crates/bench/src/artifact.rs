//! Schema-versioned benchmark artifact envelopes.
//!
//! Every study binary that leaves a machine-readable artifact behind
//! writes the same shape to the repo root (`BENCH_metrics.json`,
//! `BENCH_throughput.json`, `BENCH_profile.json`):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "artifact": "metrics",
//!   "git_rev": "abc123…",
//!   "config": { "jobs": "12", "workers": "4" },
//!   "metrics": { "farm_job_run_ns_p99": 183500.0, "farm_jobs_per_sec": 41.2 }
//! }
//! ```
//!
//! `config` records how the numbers were produced (all values strings, so
//! the shape never depends on flag types); `metrics` is a flat name→number
//! map — exactly what the regression gate diffs. Serialization is
//! hand-rolled (the workspace has no serde); envelopes are validated on
//! write with `cellsim::tracelog::validate_json` and read back with the
//! `obs::json` reader.

use std::path::{Path, PathBuf};

/// Version of the envelope shape. Bump when renaming fields; the gate
/// refuses to compare envelopes across versions.
pub const SCHEMA_VERSION: u64 = 1;

/// One artifact's contents: provenance plus a flat metrics map.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Artifact family: `"metrics"`, `"throughput"`, `"profile"`, …
    pub artifact: String,
    /// `git rev-parse HEAD` at write time (`"unknown"` outside a checkout).
    pub git_rev: String,
    /// How the run was configured, as string pairs, in insertion order.
    pub config: Vec<(String, String)>,
    /// Flat metric name → finite number, in insertion order.
    pub metrics: Vec<(String, f64)>,
}

impl Envelope {
    /// An empty envelope for `artifact`, stamped with the current git rev.
    pub fn new(artifact: &str) -> Envelope {
        Envelope {
            artifact: artifact.to_string(),
            git_rev: git_rev(),
            config: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Append a config pair (builder form).
    pub fn with_config(mut self, key: &str, value: impl std::fmt::Display) -> Envelope {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Append one metric. Non-finite values are recorded as 0 so the
    /// artifact always stays valid JSON.
    pub fn push_metric(&mut self, name: &str, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.metrics.push((name.to_string(), v));
    }

    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a config value by key.
    pub fn config_value(&self, key: &str) -> Option<&str> {
        self.config.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Serialize to a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"artifact\": {},\n", json_str(&self.artifact)));
        out.push_str(&format!("  \"git_rev\": {},\n", json_str(&self.git_rev)));
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            out.push_str(&format!("{sep}    {}: {}", json_str(k), json_str(v)));
        }
        out.push_str(if self.config.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            out.push_str(&format!("{sep}    {}: {}", json_str(k), json_num(*v)));
        }
        out.push_str(if self.metrics.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Parse an envelope written by [`Envelope::to_json`] (or by hand, as
    /// long as the shape matches). Rejects other schema versions.
    pub fn from_json(text: &str) -> Result<Envelope, String> {
        let v = obs::json::parse(text)?;
        let version = v
            .get("schema_version")
            .and_then(obs::json::Json::as_f64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION as f64 {
            return Err(format!("schema_version {version} != supported {SCHEMA_VERSION}"));
        }
        let artifact = v
            .get("artifact")
            .and_then(obs::json::Json::as_str)
            .ok_or("missing artifact")?
            .to_string();
        let git_rev =
            v.get("git_rev").and_then(obs::json::Json::as_str).unwrap_or("unknown").to_string();
        let mut config = Vec::new();
        if let Some(obj) = v.get("config").and_then(obs::json::Json::as_obj) {
            for (k, val) in obj {
                let s = val.as_str().ok_or(format!("config.{k} is not a string"))?;
                config.push((k.clone(), s.to_string()));
            }
        }
        let mut metrics = Vec::new();
        let obj =
            v.get("metrics").and_then(obs::json::Json::as_obj).ok_or("missing metrics object")?;
        for (k, val) in obj {
            let n = val.as_f64().ok_or(format!("metrics.{k} is not a number"))?;
            metrics.push((k.clone(), n));
        }
        Ok(Envelope { artifact, git_rev, config, metrics })
    }

    /// Serialize, self-check with the trace-log JSON validator, and write
    /// atomically enough for an artifact (write + rename is overkill here;
    /// a torn artifact just fails validation on the next read).
    pub fn write(&self, path: &Path) -> Result<(), String> {
        let text = self.to_json();
        cellsim::tracelog::validate_json(&text)
            .map_err(|e| format!("envelope serialization invalid: {e}"))?;
        Envelope::from_json(&text).map_err(|e| format!("envelope round-trip failed: {e}"))?;
        std::fs::write(path, &text).map_err(|e| format!("write {}: {e}", path.display()))
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // `{v}` renders integral floats without a dot ("3"), still legal JSON.
    format!("{v}")
}

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Canonical path of a root artifact: `<repo>/BENCH_<artifact>.json`.
pub fn bench_artifact_path(artifact: &str) -> PathBuf {
    repo_root().join(format!("BENCH_{artifact}.json"))
}

/// `git rev-parse HEAD`, or `"unknown"` when git or the repo is absent.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Output mode shared by the study binaries (`--format text|json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    Text,
    Json,
}

impl OutputFormat {
    /// Parse `--format` from the process arguments; `Text` when absent.
    #[deprecated(since = "0.2.0", note = "use `crate::cli::StudyArgs`, which parses `--format`")]
    pub fn from_args() -> Result<OutputFormat, String> {
        let mut args = std::env::args();
        let value = loop {
            match args.next() {
                None => break None,
                Some(a) if a == "--format" => break args.next(),
                Some(_) => {}
            }
        };
        match value.as_deref() {
            None | Some("text") => Ok(OutputFormat::Text),
            Some("json") => Ok(OutputFormat::Json),
            Some(other) => Err(format!("--format must be text or json, got {other:?}")),
        }
    }

    /// True in the default human-readable mode.
    pub fn is_text(self) -> bool {
        self == OutputFormat::Text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        let mut e = Envelope::new("selftest")
            .with_config("jobs", 12)
            .with_config("label", "quoted \"name\"");
        e.push_metric("run_ns_p99", 1234.5);
        e.push_metric("jobs_per_sec", 88.0);
        e.push_metric("bad", f64::INFINITY);
        e
    }

    #[test]
    fn envelope_round_trips_through_json() {
        let e = sample();
        let text = e.to_json();
        cellsim::tracelog::validate_json(&text).expect("envelope is valid JSON");
        let back = Envelope::from_json(&text).expect("parse back");
        assert_eq!(back.artifact, "selftest");
        assert_eq!(back.config_value("jobs"), Some("12"));
        assert_eq!(back.config_value("label"), Some("quoted \"name\""));
        assert_eq!(back.metric("run_ns_p99"), Some(1234.5));
        assert_eq!(back.metric("jobs_per_sec"), Some(88.0));
        assert_eq!(back.metric("bad"), Some(0.0), "non-finite sanitized to 0");
        assert_eq!(back.metric("missing"), None);
    }

    #[test]
    fn empty_envelope_is_still_valid() {
        let text = Envelope::new("empty").to_json();
        cellsim::tracelog::validate_json(&text).expect("valid JSON");
        let back = Envelope::from_json(&text).expect("parse back");
        assert!(back.metrics.is_empty() && back.config.is_empty());
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let text = sample().to_json().replace("\"schema_version\": 1", "\"schema_version\": 2");
        assert!(Envelope::from_json(&text).unwrap_err().contains("schema_version"));
    }

    #[test]
    fn write_and_reload() {
        let path =
            std::env::temp_dir().join(format!("raxml-envelope-test-{}.json", std::process::id()));
        sample().write(&path).expect("write");
        let back = Envelope::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.metric("run_ns_p99"), Some(1234.5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repo_root_contains_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
        assert!(bench_artifact_path("x").ends_with("BENCH_x.json"));
    }
}
