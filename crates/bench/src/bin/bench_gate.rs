//! Benchmark regression gate: compare a fresh metrics run against the
//! committed `BENCH_metrics.json` baseline.
//!
//! Default mode measures in-process, mirroring the baseline's recorded
//! config (jobs/workers/quick) so the comparison is apples-to-apples;
//! `--current PATH` diffs two existing envelopes instead. Exit codes:
//! 0 pass (or `--advisory`), 1 regression, 2 setup problems (missing or
//! unreadable baseline).
//!
//! Flags: `--advisory`, `--baseline PATH`, `--current PATH`,
//! `--threshold-pct N` (default 50).

use std::path::PathBuf;
use std::process::ExitCode;

use bench::artifact::{bench_artifact_path, Envelope};
use bench::gate::{compare_envelopes, DEFAULT_THRESHOLD_PCT};
use bench::metrics_run::{collect_metrics, MetricsRunConfig};

fn main() -> ExitCode {
    let args = bench::cli::StudyArgs::parse();
    let advisory = args.flag("--advisory");
    let baseline_path = args
        .value("--baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| bench_artifact_path("metrics"));
    let threshold = match args.value("--threshold-pct") {
        None => DEFAULT_THRESHOLD_PCT,
        Some(v) => match v.parse::<f64>() {
            Ok(t) if t > 0.0 => t,
            _ => {
                eprintln!("error: --threshold-pct must be a positive number, got {v:?}");
                return ExitCode::from(2);
            }
        },
    };

    let baseline = match load_envelope(&baseline_path) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("error: baseline {}: {msg}", baseline_path.display());
            eprintln!("hint: regenerate with `cargo run --release -p bench --bin metrics_study`");
            return ExitCode::from(2);
        }
    };

    let current = match args.value("--current") {
        Some(p) => {
            let path = PathBuf::from(p);
            match load_envelope(&path) {
                Ok(e) => e,
                Err(msg) => {
                    eprintln!("error: current {}: {msg}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => {
            // Measure now, shaped like the baseline was.
            let cfg = config_from_baseline(&baseline);
            eprintln!(
                "bench_gate: measuring {} jobs on {} workers against {}",
                cfg.n_jobs, cfg.n_workers, baseline.git_rev
            );
            match collect_metrics(&cfg) {
                Ok(run) => run.envelope,
                Err(msg) => {
                    eprintln!("error: measurement failed: {msg}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let outcome = match compare_envelopes(&baseline, &current, threshold) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    print!("{}", outcome.render_text(threshold));

    if outcome.failed() {
        if advisory {
            eprintln!("bench_gate: regression detected, but --advisory keeps the exit clean");
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        ExitCode::SUCCESS
    }
}

fn load_envelope(path: &std::path::Path) -> Result<Envelope, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Envelope::from_json(&text)
}

/// Reconstruct the measurement shape the baseline recorded, falling back
/// to defaults for anything a hand-edited baseline left out.
fn config_from_baseline(baseline: &Envelope) -> MetricsRunConfig {
    let mut cfg = MetricsRunConfig::default();
    if let Some(j) = baseline.config_value("jobs").and_then(|v| v.parse().ok()) {
        cfg.n_jobs = j;
    }
    if let Some(w) = baseline.config_value("workers").and_then(|v| v.parse().ok()) {
        cfg.n_workers = w;
    }
    cfg.quick = baseline.config_value("quick") == Some("true");
    cfg
}
