//! Observability study: per-scheduler execution traces for one SPR round.
//!
//! Simulates a single SPR round's kernel stream under EDTLP, LLP/2 and MGPS
//! with event tracing enabled, exports a Perfetto-loadable Chrome trace and
//! a JSONL metrics snapshot per scheduler, and cross-checks the
//! trace-derived per-SPE utilization against the DES's own `SimStats`
//! accounting (they must agree exactly — the trace carries the same charged
//! cycles the stats do).
//!
//! Non-smoke runs also leave a schema-versioned envelope at the repo root
//! (`BENCH_profile.json`) with per-scheduler makespan/utilization numbers.
//! These are simulated cycle counts — deterministic, so they carry no gate
//! suffix (any drift is a code change, caught by the determinism gates).
//!
//! Flags:
//!   --quick        use the reduced workload instead of the 42_SC equivalent
//!   --smoke        run the self-check suite on a small workload and exit
//!                  nonzero on any mismatch or malformed export
//!   --out D        write trace artifacts into directory D
//!                  (default: target/profile_study)
//!   --format F     text (default) or json (print the envelope)
//!   --no-artifact  skip writing BENCH_profile.json

use bench::artifact::{bench_artifact_path, Envelope, OutputFormat};
use bench::cli::StudyArgs;
use bench::{check_profile, profile_report_text, profile_spr_round, RoundProfile};
use cellsim::cost::CostModel;
use raxml_cell::experiment::{capture_workload, WorkloadSpec};

fn main() {
    let args = StudyArgs::parse();
    if args.smoke {
        match smoke() {
            Ok(()) => {
                println!("profile smoke: all checks passed");
                return;
            }
            Err(msg) => {
                eprintln!("profile smoke FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }

    let format = args.format;
    let no_artifact = args.no_artifact;
    let out_dir = args.out_dir("target/profile_study");
    let (workload, label) = bench::or_exit(bench::workload_from_args());
    if format.is_text() {
        println!("workload: {label} ({} SPR rounds marked)", workload.rounds.len());
    }

    let profiles = profile_spr_round(&workload, 16);
    for p in &profiles {
        if let Err(msg) = check_profile(p) {
            eprintln!("trace/stats cross-check FAILED: {msg}");
            std::process::exit(1);
        }
    }
    match write_artifacts(&out_dir, &profiles) {
        Ok(paths) => {
            if format.is_text() {
                for path in paths {
                    println!("wrote {path}");
                }
            }
        }
        Err(e) => {
            eprintln!("error writing artifacts: {e}");
            std::process::exit(1);
        }
    }
    let envelope = profile_envelope(workload.rounds.len(), label, &profiles);
    if !no_artifact {
        let path = bench_artifact_path("profile");
        bench::or_exit(envelope.write(&path));
        if format.is_text() {
            println!("wrote {}", path.display());
        }
    }
    let model = CostModel::paper_calibrated();
    match format {
        OutputFormat::Json => print!("{}", envelope.to_json()),
        OutputFormat::Text => print!("{}", profile_report_text(&profiles, model.clock_hz)),
    }
}

/// Fold the per-scheduler profiles into a flat envelope
/// (`edtlp_makespan_cycles`, `llp2_mean_spe_utilization_pct`, …).
fn profile_envelope(n_rounds: usize, label: &str, profiles: &[RoundProfile]) -> Envelope {
    let mut envelope =
        Envelope::new("profile").with_config("workload", label).with_config("spr_rounds", n_rounds);
    for p in profiles {
        let slug = p.label.to_lowercase().replace('/', "");
        envelope.push_metric(&format!("{slug}_makespan_cycles"), p.outcome.makespan as f64);
        envelope.push_metric(
            &format!("{slug}_mean_spe_utilization_pct"),
            100.0 * p.summary.mean_utilization(),
        );
        envelope.push_metric(
            &format!("{slug}_mean_dma_stall_pct"),
            100.0 * p.summary.mean_stall_fraction(),
        );
        envelope.push_metric(
            &format!("{slug}_ppe_busy_pct"),
            100.0 * p.summary.ppe_busy as f64 / p.outcome.makespan.max(1) as f64,
        );
        envelope.push_metric(
            &format!("{slug}_events"),
            p.summary.spe_bursts.iter().sum::<u64>() as f64,
        );
    }
    envelope
}

/// Write each profile's Chrome trace and metrics snapshot into `dir`.
fn write_artifacts(
    dir: &std::path::Path,
    profiles: &[RoundProfile],
) -> Result<Vec<String>, String> {
    let dir = &dir.display().to_string();
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    let mut paths = Vec::new();
    for p in profiles {
        let slug = p.label.to_lowercase().replace('/', "");
        let trace = format!("{dir}/round0_{slug}.trace.json");
        let metrics = format!("{dir}/round0_{slug}.metrics.jsonl");
        std::fs::write(&trace, &p.chrome_json).map_err(|e| format!("write {trace}: {e}"))?;
        std::fs::write(&metrics, &p.metrics_jsonl).map_err(|e| format!("write {metrics}: {e}"))?;
        paths.push(trace);
        paths.push(metrics);
    }
    Ok(paths)
}

/// Self-check suite for CI: trace/stats agreement, export well-formedness,
/// and round-trip through the filesystem, on a small real workload.
fn smoke() -> Result<(), String> {
    let workload =
        capture_workload(&WorkloadSpec::small()).map_err(|e| format!("workload capture: {e}"))?;

    // 1. The search must have marked at least one SPR round, and the mark
    //    must slice a nonempty prefix of the event stream.
    let mark = workload.rounds.first().ok_or("no SPR round marks recorded")?;
    if workload.round_events(mark).is_empty() {
        return Err("first SPR round slices zero events".to_string());
    }

    // 2. Per scheduler: trace totals equal SimStats exactly and both
    //    exports parse.
    let profiles = profile_spr_round(&workload, 8);
    if profiles.len() != 3 {
        return Err(format!("expected 3 scheduler profiles, got {}", profiles.len()));
    }
    for p in &profiles {
        check_profile(p)?;
        if p.summary.spe_bursts.iter().sum::<u64>() == 0 {
            return Err(format!("{}: trace recorded no SPE bursts", p.label));
        }
        if !p.chrome_json.contains("\"traceEvents\"") {
            return Err(format!("{}: chrome trace missing traceEvents array", p.label));
        }
    }

    // 3. Artifacts survive a filesystem round trip and still validate.
    let dir = std::env::temp_dir().join(format!("raxml-cell-profile-smoke-{}", std::process::id()));
    let paths = write_artifacts(&dir, &profiles)?;
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        if path.ends_with(".jsonl") {
            cellsim::tracelog::validate_jsonl(&text)
                .map_err(|e| format!("{path} failed JSONL validation after round trip: {e}"))?;
        } else {
            cellsim::tracelog::validate_json(&text)
                .map_err(|e| format!("{path} failed JSON validation after round trip: {e}"))?;
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
