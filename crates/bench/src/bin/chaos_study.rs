//! Chaos study: exactly-once accounting under deterministic wire faults
//! and a mid-run server kill/restart.
//!
//! The harness drives multi-tenant load through a server whose every
//! connection is wrapped in a [`serve::fault::FaultyStream`] injecting
//! connection drops, mid-frame truncation, and stalls from a seeded
//! [`serve::fault::ServeFaultPlan`] (corruption is deliberately excluded —
//! silent bit flips are the wire fuzz tests' subject, not an accounting
//! study's). Halfway through submission the server and service are torn
//! down and restarted **on a fresh ephemeral port** (std's `TcpListener`
//! does not set `SO_REUSEADDR`, so the old port may sit in `TIME_WAIT`);
//! the new address is published through an [`serve::client::AddrCell`] and
//! every [`serve::client::RetryClient`] reconnects to it, replaying
//! unacknowledged submits under their original idempotency keys.
//!
//! The run then proves **exactly-once execution three ways** and requires
//! the books to agree integer-exactly:
//!
//! 1. **Client view** — the distinct job ids observed done/cancelled are
//!    exactly the logical submits (nothing lost, nothing duplicated).
//! 2. **Service view** — the final life's `ShutdownReport` satisfies
//!    `completed + failed + cancelled == accepted` with zero failures.
//! 3. **Farm view** — per life, `dispatched == farm.n_jobs` and every seal
//!    is accounted; across lives, dispatch totals sum to the logical jobs.
//!
//! Replay determinism is asserted directly: the fault plan's decision
//! sequence fingerprint is computed twice and must match bit-exactly.
//! Each tenant also submits one job with `deadline_ms = 0`, which must
//! settle as a deadline cancellation — never run, never lost.
//!
//! Flags (shared surface from `bench::cli`):
//!
//! ```text
//!   --smoke          tiny run + self-checks, no root artifact
//!   --tenants N      concurrent tenants (default 3)
//!   --jobs N         normal jobs per tenant (default 6)
//!   --workers N      farm workers (default 4)
//!   --seed N         fault plan seed (default 42)
//!   --format F       text (default) or json (print the envelope)
//!   --no-artifact    skip writing BENCH_chaos.json
//! ```

use bench::artifact::{bench_artifact_path, Envelope, OutputFormat};
use bench::cli::StudyArgs;
use bench::or_exit;
use serve::client::{scrape_metrics, AddrCell, RetryClient, RetryPolicy};
use serve::fault::ServeFaultPlan;
use serve::server::{Server, ServerConfig};
use serve::service::{InferenceService, ServiceConfig};
use serve::wire::{JobKind, JobSpec, Preset, RejectReason, WireState};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ChaosConfig {
    tenants: usize,
    jobs_per_tenant: usize,
    workers: usize,
    seed: u64,
    interval: Duration,
    taxa: usize,
    sites: usize,
}

/// One tenant's observations: ids seen done, ids seen cancelled.
struct TenantOutcome {
    done: Vec<u64>,
    cancelled: Vec<u64>,
}

fn chaos_plan(seed: u64) -> ServeFaultPlan {
    ServeFaultPlan {
        seed,
        drop_rate: 0.02,
        truncate_rate: 0.02,
        corrupt_rate: 0.0,
        stall_rate: 0.04,
        stall: Duration::from_millis(2),
    }
}

fn server_config(seed: u64) -> ServerConfig {
    ServerConfig::default()
        .with_fault_plan(chaos_plan(seed))
        .with_drain_deadline(Duration::from_secs(10))
}

fn start_life(
    cfg: &ChaosConfig,
    state_dir: &std::path::Path,
    aln: &phylo::alignment::PatternAlignment,
) -> (Arc<InferenceService>, Server) {
    let service = Arc::new(or_exit(
        InferenceService::start(ServiceConfig::new(cfg.workers).paused().with_state_dir(state_dir))
            .map_err(|e| format!("starting service: {e}")),
    ));
    service.register_dataset("chaos", aln.clone());
    service.resume();
    let server = or_exit(
        Server::bind_with("127.0.0.1:0", service.clone(), server_config(cfg.seed))
            .map_err(|e| format!("binding: {e}")),
    );
    (service, server)
}

fn main() {
    let args = StudyArgs::parse();
    let cfg = ChaosConfig {
        tenants: or_exit(args.usize_value("--tenants")).unwrap_or(3).max(1),
        jobs_per_tenant: or_exit(args.usize_value("--jobs"))
            .unwrap_or(if args.smoke { 2 } else { 6 })
            .max(1),
        workers: or_exit(args.usize_value("--workers")).unwrap_or(4).max(1),
        seed: or_exit(args.u64_value("--seed")).unwrap_or(42),
        interval: Duration::from_millis(if args.smoke { 2 } else { 10 }),
        taxa: if args.smoke || args.quick { 6 } else { 8 },
        sites: if args.smoke || args.quick { 120 } else { 240 },
    };
    let normal_total = cfg.tenants * cfg.jobs_per_tenant;
    let total = normal_total + cfg.tenants; // + one deadline job per tenant
    if args.format.is_text() {
        eprintln!(
            "chaos_study: {} tenants x {} jobs (+1 deadline job each) on {} workers, fault seed {}",
            cfg.tenants, cfg.jobs_per_tenant, cfg.workers, cfg.seed
        );
    }

    // Replay determinism: the same plan must produce a bit-identical fault
    // decision sequence every time it is consulted.
    let fingerprint = chaos_plan(cfg.seed).sequence_fingerprint(64, 256);
    if fingerprint != chaos_plan(cfg.seed).sequence_fingerprint(64, 256) {
        fail("fault plan replay diverged for the same seed");
    }
    if fingerprint == chaos_plan(cfg.seed + 1).sequence_fingerprint(64, 256) {
        fail("fault plans with different seeds collided");
    }

    let state_dir = std::env::temp_dir().join(format!("raxml-cell-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let aln = phylo::simulate::SimulationConfig::new(cfg.taxa, cfg.sites, 7).generate().alignment;

    // Life 1.
    let (service1, mut server1) = start_life(&cfg, &state_dir, &aln);
    let addr_cell = AddrCell::new(server1.addr());
    let submitted_count = Arc::new(AtomicUsize::new(0));

    let wall_start = Instant::now();
    let (outcomes, drain1, report1, life2) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.tenants)
            .map(|t| {
                let cfg = &cfg;
                let cell = addr_cell.clone();
                let counter = submitted_count.clone();
                scope.spawn(move || or_exit(run_tenant(cell, counter, t, cfg)))
            })
            .collect();

        // The kill: once half the normal jobs are in, tear the server down
        // (graceful drain, assert no leaked handler threads), shut the
        // service down, and restart both on a fresh port. Clients ride it
        // out through AddrCell + idempotent retry.
        while submitted_count.load(Ordering::Relaxed) < normal_total / 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let drain1 = server1.stop();
        let report1 = service1.shutdown().expect("first shutdown");
        let (service2, server2) = start_life(&cfg, &state_dir, &aln);
        addr_cell.set(server2.addr());

        let outcomes: Vec<TenantOutcome> =
            handles.into_iter().map(|h| h.join().expect("tenant thread")).collect();
        (outcomes, drain1, report1, (service2, server2))
    });
    let wall = wall_start.elapsed();
    let (service2, mut server2) = life2;

    // Books #1: the client view. Every logical submit observed terminal
    // exactly once, deadline jobs cancelled, everything else done.
    let mut seen = HashSet::new();
    let mut done_count = 0usize;
    let mut cancelled_count = 0usize;
    for outcome in &outcomes {
        for &id in outcome.done.iter().chain(&outcome.cancelled) {
            if !seen.insert(id) {
                fail(&format!("job id {id} observed terminal twice"));
            }
        }
        done_count += outcome.done.len();
        cancelled_count += outcome.cancelled.len();
    }
    if seen.len() != total || done_count != normal_total || cancelled_count != cfg.tenants {
        fail(&format!(
            "client view: {} distinct / {done_count} done / {cancelled_count} cancelled, \
             expected {total} / {normal_total} / {}",
            seen.len(),
            cfg.tenants
        ));
    }

    // Scrape and validate /metrics from the surviving server.
    let prom =
        or_exit(scrape_metrics(server2.addr()).map_err(|e| format!("scraping /metrics: {e}")));
    or_exit(obs::validate_prometheus_text(&prom));
    if !prom.contains("serve_submitted_total") {
        fail("/metrics export is missing serve_submitted_total");
    }

    let faults_injected = server1.fault_tally().total() + server2.fault_tally().total();
    let drain2 = server2.stop();
    let report2 = service2.shutdown().expect("second shutdown");

    if drain1.leaked != 0 || drain2.leaked != 0 {
        fail(&format!(
            "drain leaked handler threads: life1 {} / life2 {}",
            drain1.leaked, drain2.leaked
        ));
    }

    // Books #2: the service view. The final life replayed the journal, so
    // its accounting covers every logical job across both lives.
    let s = report2.stats;
    if s.accepted != total as u64
        || s.completed != normal_total as u64
        || s.cancelled != cfg.tenants as u64
        || s.failed != 0
        || s.queued != 0
        || s.running != 0
    {
        fail(&format!(
            "service accounting: {s:?}, expected {total} accepted, {normal_total} completed"
        ));
    }

    // Books #3: the farm view, per life and across lives.
    for (label, report) in [("life1", &report1), ("life2", &report2)] {
        if report.dispatched != report.farm.n_jobs {
            fail(&format!(
                "{label}: dispatched {} != farm n_jobs {}",
                report.dispatched, report.farm.n_jobs
            ));
        }
        if report.sealed_ok + report.sealed_failed != report.dispatched as u64 {
            fail(&format!(
                "{label}: seals {} + {} != dispatched {}",
                report.sealed_ok, report.sealed_failed, report.dispatched
            ));
        }
    }
    if report1.dispatched + report2.dispatched != total {
        fail(&format!(
            "cross-life dispatch: {} + {} != {total} (a job ran twice or never)",
            report1.dispatched, report2.dispatched
        ));
    }

    let jobs_per_sec = total as f64 / wall.as_secs_f64();
    let retries = obs::global().counter("serve_retries_total").get();
    let reconnects = obs::global().counter("serve_client_reconnects_total").get();

    let mut envelope = Envelope::new("chaos")
        .with_config("tenants", cfg.tenants)
        .with_config("jobs_per_tenant", cfg.jobs_per_tenant)
        .with_config("workers", cfg.workers)
        .with_config("seed", cfg.seed)
        .with_config("fault_fingerprint", format!("{fingerprint:016x}"))
        .with_config("taxa", cfg.taxa)
        .with_config("sites", cfg.sites);
    envelope.push_metric("chaos_jobs_per_sec", jobs_per_sec);
    envelope.push_metric("chaos_jobs_total", total as f64);
    envelope.push_metric("chaos_cancelled_total", cancelled_count as f64);
    envelope.push_metric("chaos_faults_injected", faults_injected as f64);
    envelope.push_metric("chaos_client_retries", retries as f64);
    envelope.push_metric("chaos_client_reconnects", reconnects as f64);
    envelope.push_metric("chaos_drain_leaked", (drain1.leaked + drain2.leaked) as f64);

    if !args.smoke && !args.no_artifact {
        let path = bench_artifact_path("chaos");
        or_exit(envelope.write(&path));
        if args.format.is_text() {
            eprintln!("wrote {}", path.display());
        }
    }
    match args.format {
        OutputFormat::Json => print!("{}", envelope.to_json()),
        OutputFormat::Text => {
            println!(
                "{total} jobs exactly-once across a kill/restart: {done_count} done, \
                 {cancelled_count} deadline-cancelled, 0 lost, 0 duplicated"
            );
            println!(
                "faults injected: {faults_injected} | client retries: {retries} | \
                 reconnects: {reconnects} | fingerprint {fingerprint:016x}"
            );
            println!(
                "dispatch: life1 {} + life2 {} == {total}; drains joined {}+{} leaked 0",
                report1.dispatched, report2.dispatched, drain1.joined, drain2.joined
            );
            if args.smoke {
                println!("chaos_study smoke: OK");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&state_dir);
}

/// One tenant: submit all normal jobs plus one `deadline_ms = 0` job
/// through a reconnecting exactly-once client, then observe every job to a
/// terminal state.
fn run_tenant(
    addr: AddrCell,
    submitted_count: Arc<AtomicUsize>,
    tenant_idx: usize,
    cfg: &ChaosConfig,
) -> Result<TenantOutcome, String> {
    let tenant = format!("tenant-{tenant_idx}");
    let policy = RetryPolicy {
        max_attempts: 120,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(200),
    };
    let mut client = RetryClient::new(addr, &format!("c{tenant_idx}")).with_policy(policy);

    let mut normal: Vec<u64> = Vec::with_capacity(cfg.jobs_per_tenant);
    for j in 0..cfg.jobs_per_tenant {
        let mut spec = JobSpec::new(
            "chaos",
            JobKind::Search,
            (tenant_idx * 1000 + j) as u64 + 1,
            Preset::Fast,
        );
        spec.max_spr_rounds = Some(1);
        normal.push(submit_retrying(&mut client, &tenant, &spec)?);
        submitted_count.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(cfg.interval);
    }
    // The deadline job: a zero budget has always expired by dispatch time,
    // so it must settle as `Cancelled` without ever running.
    let deadline_spec =
        JobSpec::new("chaos", JobKind::Search, 999_000 + tenant_idx as u64, Preset::Fast)
            .with_deadline_ms(0);
    let deadline_job = submit_retrying(&mut client, &tenant, &deadline_spec)?;

    let mut outcome = TenantOutcome { done: Vec::new(), cancelled: Vec::new() };
    for id in normal {
        let status = client
            .wait_done(id, Duration::from_secs(600))
            .map_err(|e| format!("{tenant}: waiting on job {id}: {e}"))?;
        if status.state != WireState::Done {
            return Err(format!("{tenant}: job {id} ended {:?}: {:?}", status.state, status.error));
        }
        outcome.done.push(id);
    }
    let status = client
        .wait_done(deadline_job, Duration::from_secs(600))
        .map_err(|e| format!("{tenant}: waiting on deadline job {deadline_job}: {e}"))?;
    if status.state != WireState::Cancelled {
        return Err(format!(
            "{tenant}: deadline job {deadline_job} ended {:?}, expected cancelled",
            status.state
        ));
    }
    outcome.cancelled.push(deadline_job);
    Ok(outcome)
}

/// Submit with the study's full resilience stack: `RetryClient` covers
/// transport faults under one idempotency key; a `ShuttingDown` rejection
/// (the race against a draining life) is a definitive "not admitted", so it
/// is safe to retry as a fresh logical submit until the next life is up.
fn submit_retrying(client: &mut RetryClient, tenant: &str, spec: &JobSpec) -> Result<u64, String> {
    for _ in 0..600 {
        match client.submit(tenant, spec) {
            Ok(Ok(id)) => return Ok(id),
            Ok(Err(RejectReason::ShuttingDown)) => std::thread::sleep(Duration::from_millis(10)),
            Ok(Err(reason)) => return Err(format!("{tenant}: rejected: {reason:?}")),
            Err(e) => return Err(format!("{tenant}: submit transport: {e}")),
        }
    }
    Err(format!("{tenant}: server stayed in shutdown"))
}

fn fail(message: &str) -> ! {
    eprintln!("chaos_study FAILED: {message}");
    std::process::exit(1);
}
