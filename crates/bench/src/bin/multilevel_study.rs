//! Contribution III of the paper: the EDTLP vs LLP crossover that motivates
//! the dynamic MGPS scheduler — "three layers of parallelism \[win\] for
//! workloads with a low degree (≤4) of task-level parallelism; two layers
//! for large and realistic workloads".
//! Pass --quick for the reduced workload.

use cellsim::cost::CostModel;
use raxml_cell::experiment::run_multilevel_study;
use raxml_cell::sched::DesParams;

fn main() {
    let (w, label) = bench::or_exit(bench::workload_from_args());
    println!("workload: {label}");
    let rows = bench::or_exit(run_multilevel_study(
        &w,
        &CostModel::paper_calibrated(),
        &DesParams::default(),
    ));
    println!("\nEDTLP (2 layers) vs LLP (3 layers) vs dynamic MGPS [seconds]:\n");
    println!("  {:>10} {:>10} {:>10} {:>10}   winner", "bootstraps", "EDTLP", "LLP", "MGPS");
    for r in &rows {
        let winner = if r.llp_seconds < r.edtlp_seconds { "LLP" } else { "EDTLP" };
        println!(
            "  {:>10} {:>10.2} {:>10.2} {:>10.2}   {winner}",
            r.n_bootstraps, r.edtlp_seconds, r.llp_seconds, r.mgps_seconds
        );
    }
    println!("\nThe crossover reproduces the paper's Contribution III: LLP wins at low");
    println!("task-level parallelism, EDTLP wins once ≥8 independent bootstraps exist,");
    println!("and MGPS tracks whichever is better — 'no single model performs best in");
    println!("all cases' (§5.3).");
}
