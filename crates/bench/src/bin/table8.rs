//! Regenerates Table 8 (the MGPS dynamic scheduler), with per-SPE
//! utilization reports. Pass --quick for the reduced workload.
fn main() {
    let (w, label) = bench::or_exit(bench::workload_from_args());
    println!("workload: {label}");
    println!("{}", bench::or_exit(bench::table8_text(&w)));
    for n in [1usize, 8, 32] {
        println!("{}", bench::mgps_utilization_text(&w, n));
    }
}
