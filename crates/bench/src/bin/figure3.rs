//! Regenerates Figure 3 (Cell vs Power5 vs Xeon).
//! Pass --quick for the reduced workload.
fn main() {
    let (w, label) = bench::or_exit(bench::workload_from_args());
    println!("workload: {label}");
    println!("{}", bench::or_exit(bench::figure3_text_for(&w)));
}
