//! Extension study: fault injection across the DES schedulers.
//!
//! Sweeps uniform fault rates and a dead-SPE scenario over EDTLP, LLP and
//! MGPS, printing makespan degradation plus the recovery machinery's
//! activity (retries, re-dispatches, blacklists, PPE degradations).
//!
//! Flags:
//!   --quick     use the reduced workload instead of the 42_SC equivalent
//!   --smoke     run the self-check suite (determinism, inert-plan equality,
//!               checkpoint kill-and-resume) and exit nonzero on any mismatch
//!   --format F  text (default) or json (a `fault` envelope with per-row
//!               `{sched}_rate{N}pct_slowdown` / `{sched}_spe_deaths_slowdown`
//!               metrics; purely informational, nothing gates)

use bench::artifact::{Envelope, OutputFormat};
use cellsim::cost::CostModel;
use cellsim::fault::FaultPlan;
use phylo::bootstrap::{BootstrapAnalysis, BootstrapCheckpointPolicy};
use phylo::checkpoint::{search_fingerprint, SearchCheckpointer};
use phylo::error::PhyloError;
use phylo::search::{run_inference, InferenceOptions, InferenceRequest, SearchConfig};
use phylo::simulate::SimulationConfig;
use raxml_cell::config::{OptConfig, Scheduler};
use raxml_cell::experiment::{capture_workload, WorkloadSpec};
use raxml_cell::offload::price_trace;
use raxml_cell::sched::{schedule_makespan, schedule_makespan_with_faults, DesParams};

fn main() {
    let args = bench::cli::StudyArgs::parse();
    if args.smoke {
        match smoke() {
            Ok(()) => {
                println!("fault smoke: all checks passed");
                return;
            }
            Err(msg) => {
                eprintln!("fault smoke FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    let format = args.format;
    let (w, label) = bench::or_exit(bench::workload_from_args());
    match format {
        OutputFormat::Text => {
            println!("workload: {label}");
            print!("{}", bench::fault_study_text(&w, 16));
        }
        OutputFormat::Json => {
            let (sweep, deaths) = bench::fault_study_rows(&w, 16);
            let mut envelope = Envelope::new("fault").with_config("workload", label);
            for row in &sweep {
                let slug = row.scheduler.to_lowercase().replace('/', "");
                let pct = (row.fault_rate * 100.0).round() as u64;
                envelope.push_metric(&format!("{slug}_rate{pct}pct_slowdown"), row.degradation());
            }
            for row in &deaths {
                let slug = row.scheduler.to_lowercase().replace('/', "");
                envelope.push_metric(&format!("{slug}_spe_deaths_slowdown"), row.degradation());
            }
            print!("{}", envelope.to_json());
        }
    }
}

/// Self-check suite for CI: every property the fault machinery guarantees,
/// verified end to end on small inputs.
fn smoke() -> Result<(), String> {
    let workload =
        capture_workload(&WorkloadSpec::small()).map_err(|e| format!("workload capture: {e}"))?;
    let model = CostModel::paper_calibrated();
    let params = DesParams::default();
    let priced = price_trace(&workload.events, &model, &OptConfig::fully_optimized());
    let schedulers = [
        Scheduler::Edtlp,
        Scheduler::Llp { workers: 2 },
        Scheduler::Llp { workers: 4 },
        Scheduler::Mgps,
    ];

    // 1. The all-zero plan reproduces the fault-free path bit-exactly.
    for &sched in &schedulers {
        let clean = schedule_makespan(sched, &priced, 8, &model, &params);
        let inert =
            schedule_makespan_with_faults(sched, &priced, 8, &model, &params, &FaultPlan::none());
        if inert.makespan != clean || !inert.faults.is_clean() {
            return Err(format!(
                "{sched:?}: inert plan diverged ({} vs {})",
                inert.makespan, clean
            ));
        }
    }

    // 2. A seeded nonzero-rate plan replays deterministically.
    for &sched in &schedulers {
        let plan = FaultPlan::uniform(13, 0.1);
        let a = schedule_makespan_with_faults(sched, &priced, 8, &model, &params, &plan);
        let b = schedule_makespan_with_faults(sched, &priced, 8, &model, &params, &plan);
        if a.makespan != b.makespan || a.faults != b.faults {
            return Err(format!("{sched:?}: fault replay not deterministic"));
        }
        // Scheduling anomalies can let a perturbed run finish marginally
        // earlier; only a substantial speedup would indicate lost work.
        let clean = schedule_makespan(sched, &priced, 8, &model, &params);
        if (a.makespan as f64) < clean as f64 * 0.95 {
            return Err(format!("{sched:?}: faults cut the makespan by >5%"));
        }
    }

    // 3. A killed SPR search resumes from its checkpoint bit-identically.
    let dir = std::env::temp_dir().join(format!("raxml-cell-fault-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let w = SimulationConfig::new(8, 200, 19).generate();
    let cfg = SearchConfig::fast();
    let seed = 2;
    let request = InferenceRequest::new(cfg.clone(), seed);
    let reference = run_inference(&w.alignment, &request, InferenceOptions::new())
        .map_err(|e| format!("reference search: {e}"))?
        .result;
    let path = dir.join("search.ckpt");
    let fp = search_fingerprint(&w.alignment, &cfg, seed);
    let mut dying = SearchCheckpointer::new(&path, fp).abort_after_saves(1);
    match run_inference(&w.alignment, &request, InferenceOptions::new().with_checkpoint(&mut dying))
    {
        Err(PhyloError::Interrupted { .. }) => {}
        other => return Err(format!("expected interrupted search, got {other:?}")),
    }
    let mut ckpt = SearchCheckpointer::new(&path, fp);
    let resumed =
        run_inference(&w.alignment, &request, InferenceOptions::new().with_checkpoint(&mut ckpt))
            .map_err(|e| format!("resume: {e}"))?
            .result;
    if resumed.tree.to_exact_string() != reference.tree.to_exact_string()
        || resumed.log_likelihood.to_bits() != reference.log_likelihood.to_bits()
    {
        return Err("resumed search diverged from the uninterrupted run".to_string());
    }

    // 4. A killed bootstrap analysis resumes bit-identically too.
    let analysis =
        BootstrapAnalysis { n_inferences: 1, n_bootstraps: 3, n_workers: 2, seed: 5, search: cfg };
    let reference =
        analysis.try_run(&w.alignment).map_err(|e| format!("reference analysis: {e}"))?;
    let store = dir.join("bootstrap.ckpt");
    let dying = BootstrapCheckpointPolicy::new(&store, 2).abort_after_chunks(1);
    match analysis.run_with_checkpoint(&w.alignment, &dying) {
        Err(PhyloError::Interrupted { .. }) => {}
        other => return Err(format!("expected interrupted analysis, got {other:?}")),
    }
    let resumed = analysis
        .run_with_checkpoint(&w.alignment, &BootstrapCheckpointPolicy::new(&store, 2))
        .map_err(|e| format!("bootstrap resume: {e}"))?;
    if resumed.best_log_likelihood.to_bits() != reference.best_log_likelihood.to_bits()
        || resumed.best.tree.to_exact_string() != reference.best.tree.to_exact_string()
    {
        return Err("resumed bootstrap analysis diverged".to_string());
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
