//! Ablation study of the five SPE-code optimizations: each applied alone to
//! the naive offload, and each removed from the fully optimized build.
//! Pass --quick for the reduced workload.

use cellsim::cost::CostModel;
use raxml_cell::experiment::run_ablation;

fn main() {
    let (w, label) = bench::or_exit(bench::workload_from_args());
    println!("workload: {label}");
    let rows = bench::or_exit(run_ablation(&w, &CostModel::paper_calibrated()));
    println!("\nablation of the SPE optimizations (1 worker × 1 bootstrap):\n");
    println!(
        "  {:<34} {:>10} {:>10} | {:>12} {:>10}",
        "optimization", "alone [s]", "gain", "without [s]", "loss"
    );
    for r in &rows {
        println!(
            "  {:<34} {:>10.2} {:>9.1}% | {:>12.2} {:>9.1}%",
            r.name,
            r.alone_seconds,
            r.alone_gain * 100.0,
            r.without_seconds,
            r.without_loss * 100.0
        );
    }
    println!("\n'gain' = improvement over the naive offload when applied in isolation;");
    println!("'loss' = slowdown when removed from the fully optimized configuration.");
    println!("Differences between columns are interaction effects (e.g. double");
    println!("buffering matters more after the compute it hides behind shrinks).");
}
