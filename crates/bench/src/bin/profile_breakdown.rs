//! Regenerates the §5.2 gprofile-style breakdown of the workload.
//! Pass --quick for the reduced workload.
use cellsim::cost::CostModel;
fn main() {
    let (w, label) = bench::or_exit(bench::workload_from_args());
    println!("workload: {label}");
    println!("{}", bench::or_exit(bench::profile_text(&w, &CostModel::paper_calibrated())));
}
