//! Projection: MGPS throughput vs SPE count (1 → 16 SPEs, including the
//! dual-Cell blade's 16-SPE / 4-PPE-thread configuration the paper's
//! hardware offered but its software never used).
//! Pass --quick for the reduced workload.

use cellsim::cost::CostModel;
use raxml_cell::experiment::run_scaling_study;

fn main() {
    let (w, label) = bench::or_exit(bench::workload_from_args());
    println!("workload: {label}");
    let rows = bench::or_exit(run_scaling_study(&w, &CostModel::paper_calibrated(), 32));
    println!("\nMGPS scaling at 32 bootstraps:\n");
    println!(
        "  {:>6} {:>12} {:>14} {:>10} {:>10}",
        "SPEs", "PPE threads", "makespan [s]", "speedup", "SPE util"
    );
    for r in &rows {
        println!(
            "  {:>6} {:>12} {:>14.2} {:>9.2}× {:>9.1}%",
            r.n_spes,
            r.ppe_threads,
            r.makespan_seconds,
            r.speedup,
            r.spe_utilization * 100.0
        );
    }
    println!("\nThe last two rows compare a 16-SPE machine behind the Cell's 2 PPE");
    println!("threads against one with 4 (a dual-Cell blade): where they differ, the");
    println!("PPE is the scaling bottleneck the paper's EDTLP design works around.");
}
