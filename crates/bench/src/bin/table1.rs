//! Regenerates Table 1 (a: PPE-only, b: naive newview offload).
//! Pass --quick for the reduced workload.
fn main() {
    let (w, label) = bench::or_exit(bench::workload_from_args());
    println!("workload: {label}");
    println!("{}", bench::or_exit(bench::ladder_level_text(&w, 0)));
    println!("{}", bench::or_exit(bench::ladder_level_text(&w, 1)));
}
