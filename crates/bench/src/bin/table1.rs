//! Regenerates Table 1 (a: PPE-only, b: naive newview offload).
//! Pass --quick for the reduced workload.
fn main() {
    let (w, label) = bench::workload_from_args();
    println!("workload: {label}");
    println!("{}", bench::ladder_level_text(&w, 0));
    println!("{}", bench::ladder_level_text(&w, 1));
}
