//! The §5.2.4 counterfactual: what would code overlays have cost if the
//! three kernels had not fit the SPE local store?
//! Pass --quick for the reduced workload.

use cellsim::cost::CostModel;
use raxml_cell::experiment::run_overlay_study;

fn main() {
    let (w, label) = bench::or_exit(bench::workload_from_args());
    println!("workload: {label}");
    let rows = bench::or_exit(run_overlay_study(&w, &CostModel::paper_calibrated()));
    println!("\ncode-overlay what-if (one bootstrap, fully optimized config):\n");
    println!(
        "  {:>10} {:>12} {:>12} {:>14} {:>14}",
        "budget", "faults", "fault rate", "overhead [s]", "bootstrap [s]"
    );
    for r in &rows {
        println!(
            "  {:>7} KB {:>12} {:>11.1}% {:>14.3} {:>14.2}",
            r.budget / 1024,
            r.faults,
            r.fault_rate * 100.0,
            r.overhead_seconds,
            r.bootstrap_seconds
        );
    }
    println!("\nThe paper kept the kernel footprint at 117 KB so the whole module set");
    println!("stays resident (3 cold faults). Below that, calls alternate between");
    println!("newview and makenewz/evaluate and the LRU set thrashes.");
}
