//! Wall-clock metrics study: run an instrumented bootstrap batch and emit
//! the full observability surface.
//!
//! Outputs:
//!
//! * `--out` dir (default `target/metrics_study/`): `metrics.prom`
//!   (Prometheus text exposition) and `metrics.jsonl` (one JSON object per
//!   metric), both validated after a filesystem round trip;
//! * repo root `BENCH_metrics.json` (non-smoke runs, unless
//!   `--no-artifact`): the schema-versioned envelope the regression gate
//!   diffs.
//!
//! Flags: `--smoke` (tiny run + self-checks, no root artifact), `--quick`
//! (small alignment), `--jobs N`, `--workers N`, `--out DIR`,
//! `--format text|json`, `--no-artifact`.

use std::process::ExitCode;

use bench::artifact::{bench_artifact_path, OutputFormat};
use bench::cli::StudyArgs;
use bench::metrics_run::{collect_metrics, MetricsRun, MetricsRunConfig, FARM_HIST_FAMILIES};
use bench::or_exit;

fn main() -> ExitCode {
    let args = StudyArgs::parse();
    let (smoke, quick, no_artifact, format) =
        (args.smoke, args.quick, args.no_artifact, args.format);
    let jobs = or_exit(args.usize_value("--jobs"));
    let workers = or_exit(args.usize_value("--workers"));
    let out_dir = args.out_dir("target/metrics_study");

    let cfg = if smoke {
        MetricsRunConfig::smoke()
    } else {
        let mut c = MetricsRunConfig { quick, ..MetricsRunConfig::default() };
        if let Some(j) = jobs {
            c.n_jobs = j;
        }
        if let Some(w) = workers {
            c.n_workers = w;
        }
        c
    };

    if format.is_text() {
        eprintln!(
            "metrics_study: {} jobs on {} workers ({})",
            cfg.n_jobs,
            cfg.n_workers,
            if cfg.quick { "quick alignment" } else { "full alignment" }
        );
    }
    let run = or_exit(collect_metrics(&cfg));

    // Raw exports land under --out and must survive a filesystem round
    // trip through their validators.
    or_exit(
        std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {}: {e}", out_dir.display())),
    );
    let prom_path = out_dir.join("metrics.prom");
    let jsonl_path = out_dir.join("metrics.jsonl");
    or_exit(
        std::fs::write(&prom_path, &run.prometheus)
            .map_err(|e| format!("write {}: {e}", prom_path.display())),
    );
    or_exit(
        std::fs::write(&jsonl_path, &run.jsonl)
            .map_err(|e| format!("write {}: {e}", jsonl_path.display())),
    );
    let prom_back =
        or_exit(std::fs::read_to_string(&prom_path).map_err(|e| format!("read back: {e}")));
    or_exit(obs::validate_prometheus_text(&prom_back));
    let jsonl_back =
        or_exit(std::fs::read_to_string(&jsonl_path).map_err(|e| format!("read back: {e}")));
    or_exit(cellsim::tracelog::validate_jsonl(&jsonl_back));

    if smoke {
        or_exit(smoke_checks(&run));
    }

    if !smoke && !no_artifact {
        let path = bench_artifact_path("metrics");
        or_exit(run.envelope.write(&path));
        if format.is_text() {
            eprintln!("wrote {}", path.display());
        }
    }

    match format {
        OutputFormat::Json => print!("{}", run.envelope.to_json()),
        OutputFormat::Text => {
            print!("{}", render_text(&run));
            eprintln!("wrote {} and {}", prom_path.display(), jsonl_path.display());
            if smoke {
                println!("metrics_study smoke: OK");
            }
        }
    }
    ExitCode::SUCCESS
}

/// Smoke-mode self-checks: the registry's farm counters must agree with
/// the farm's own `FarmStats`, and the headline histograms must have one
/// sample per job.
fn smoke_checks(run: &MetricsRun) -> Result<(), String> {
    let jobs = run.envelope.metric("farm_jobs_total").unwrap_or(-1.0);
    if jobs != run.stats.n_jobs as f64 {
        return Err(format!(
            "coherence: farm_jobs_total {jobs} != FarmStats.n_jobs {}",
            run.stats.n_jobs
        ));
    }
    let steals = run.envelope.metric("farm_steals_total").unwrap_or(-1.0);
    if steals != run.stats.steals as f64 {
        return Err(format!(
            "coherence: farm_steals_total {steals} != FarmStats.steals {}",
            run.stats.steals
        ));
    }
    for family in FARM_HIST_FAMILIES {
        let count = run.envelope.metric(&format!("{family}_count")).unwrap_or(-1.0);
        if count != run.stats.n_jobs as f64 {
            return Err(format!("coherence: {family}_count {count} != jobs {}", run.stats.n_jobs));
        }
    }
    if !run.prometheus.contains("# TYPE farm_jobs_total counter") {
        return Err("prometheus export missing farm_jobs_total TYPE line".to_string());
    }
    Ok(())
}

fn render_text(run: &MetricsRun) -> String {
    let e = &run.envelope;
    let mut out = String::new();
    out.push_str(&format!(
        "== wall-clock metrics ({} jobs, {} workers) ==\n",
        e.config_value("jobs").unwrap_or("?"),
        e.config_value("workers").unwrap_or("?"),
    ));
    out.push_str(&format!(
        "throughput: {:.2} jobs/s  (traced: {:.2})\n",
        e.metric("farm_jobs_per_sec").unwrap_or(0.0),
        e.metric("farm_jobs_per_sec_traced").unwrap_or(0.0),
    ));
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>8}\n",
        "latency (ns)", "p50", "p90", "p99", "max", "count"
    ));
    for name in FARM_HIST_FAMILIES.iter().copied().chain([
        "evaluate_dispatch_ns",
        "newton_dispatch_ns",
        "bootstrap_append_ns",
        "checkpoint_write_ns",
    ]) {
        let m = |suffix: &str| e.metric(&format!("{name}_{suffix}")).unwrap_or(0.0);
        out.push_str(&format!(
            "{:<24} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>8.0}\n",
            name,
            m("p50"),
            m("p90"),
            m("p99"),
            m("max"),
            m("count"),
        ));
    }
    out.push_str(&format!(
        "counters: jobs {} failed {} steals {} backpressure {} deaths {}\n",
        e.metric("farm_jobs_total").unwrap_or(0.0),
        e.metric("farm_jobs_failed_total").unwrap_or(0.0),
        e.metric("farm_steals_total").unwrap_or(0.0),
        e.metric("farm_backpressure_waits_total").unwrap_or(0.0),
        e.metric("farm_workers_died_total").unwrap_or(0.0),
    ));
    out.push_str(&format!(
        "patterns: evaluate {} ({:.0}/s)  newton {}\n",
        e.metric("evaluate_patterns_total").unwrap_or(0.0),
        e.metric("evaluate_patterns_per_sec").unwrap_or(0.0),
        e.metric("newton_patterns_total").unwrap_or(0.0),
    ));
    out
}
