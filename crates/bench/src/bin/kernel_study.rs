//! Kernel-width and cross-move-reuse study.
//!
//! Two questions, one artifact:
//!
//! 1. **Does pattern-parallel widening pay?** `newview` throughput
//!    (patterns/sec) for the scalar, 2-lane, 4-lane and 8-lane kernels on
//!    the tiled CLV layout, swept over 1k–4k pattern alignments — the regime
//!    where RAxML-Cell's SPE loops live. All four widths are bit-identical
//!    by construction (lanes map to patterns), so this is a pure
//!    throughput comparison.
//! 2. **Does cross-move partial reuse pay?** One full lazy-SPR round with
//!    the engine's validity-generation cache enabled vs flushed before
//!    every candidate. Both modes must (and do — checked here) produce
//!    bit-identical likelihoods and apply identical moves; the study
//!    reports the wall-clock gap and the engine's own reuse accounting.
//!
//! Metrics ending `_per_sec` / `_p99` enroll in the benchmark regression
//! gate (advisory in CI); the rest are informational.
//!
//! Flags:
//!   --smoke        self-check suite (kernel bit-identity incl. underflow
//!                  scaling, reuse-vs-flush bit-identity, envelope round
//!                  trip) and exit nonzero on failure
//!   --quick        reduced sweep (fewer reps, smaller SPR instance)
//!   --format F     text (default) or json (print the envelope)
//!   --no-artifact  skip writing BENCH_kernels.json

use std::hint::black_box;
use std::time::Instant;

use bench::artifact::{bench_artifact_path, Envelope, OutputFormat};
use bench::cli::StudyArgs;
use phylo::likelihood::engine::LikelihoodEngine;
use phylo::likelihood::kernels::{newview, tile_partials, tiled_len, Child, Mat4, ScaleStats};
use phylo::likelihood::{wide8_supported, KernelKind, LikelihoodConfig, ScalingCheck};
use phylo::model::{ExpImpl, GammaRates, SubstModel};
use phylo::search::spr::spr_round_with_mode;
use phylo::simulate::SimulationConfig;
use phylo::tree::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_RATES: usize = 4;
const KINDS: [(KernelKind, &str); 4] = [
    (KernelKind::Scalar, "scalar"),
    (KernelKind::Vector, "vector"),
    (KernelKind::Wide4, "wide4"),
    (KernelKind::Wide8, "wide8"),
];

fn main() {
    let args = StudyArgs::parse();
    if args.smoke {
        match smoke() {
            Ok(()) => {
                println!("kernel smoke: all checks passed");
                return;
            }
            Err(msg) => {
                eprintln!("kernel smoke FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }

    let sizes: &[usize] = if args.quick { &[1024, 2048] } else { &[1024, 2048, 4096] };
    let reps = if args.quick { 20 } else { 60 };
    let spr_reps = if args.quick { 5 } else { 11 };

    let mut envelope = Envelope::new("kernels")
        .with_config("rates", N_RATES)
        .with_config("newview_reps", reps)
        .with_config("spr_reps", spr_reps)
        .with_config("wide8_hw", wide8_supported())
        // Compile-time ISA of this binary: with the baseline x86-64 target
        // the 4/8-lane kernels are split into 128-bit halves and widening
        // buys little; build with RUSTFLAGS="-C target-cpu=native" for the
        // numbers the layout is designed for. Results are bit-identical
        // either way (Rust never contracts mul+add into fma).
        .with_config("compiled_avx2", cfg!(target_feature = "avx2"))
        .with_config("compiled_avx512f", cfg!(target_feature = "avx512f"))
        .with_config("latency_unit", "ns");

    if args.format.is_text() {
        println!("newview throughput (patterns/sec), tiled CLV layout, {N_RATES} rates");
        print!("{:>10}", "patterns");
        for (_, name) in KINDS {
            print!("{name:>14}");
        }
        println!();
    }
    for &n in sizes {
        let mut row = Vec::new();
        for (kind, name) in KINDS {
            let pps = newview_throughput(n, kind, reps);
            envelope.push_metric(&format!("newview_{name}_{n}"), pps);
            row.push(pps);
        }
        if args.format.is_text() {
            print!("{n:>10}");
            for pps in &row {
                print!("{:>14.0}", pps);
            }
            println!();
        }
    }
    // Headline gate metrics: the largest size of the sweep (least noise;
    // "at >= 1k patterns" is exactly the acceptance regime).
    let top = *sizes.last().expect("sweep is never empty");
    for (_, name) in KINDS {
        let v = envelope
            .metric(&format!("newview_{name}_{top}"))
            .expect("headline size was just measured");
        envelope.push_metric(&format!("newview_{name}_patterns_per_sec"), v);
    }

    match spr_comparison(spr_reps, args.quick) {
        Ok(spr) => {
            envelope.push_metric("spr_round_p99", spr.reuse_p99_ns);
            envelope.push_metric("spr_round_reuse_mean_ns", spr.reuse_mean_ns);
            envelope.push_metric("spr_round_full_mean_ns", spr.full_mean_ns);
            envelope.push_metric("spr_reuse_partials_reused", spr.partials_reused as f64);
            envelope.push_metric("spr_reuse_partials_recomputed", spr.reuse_recomputed as f64);
            envelope.push_metric("spr_full_partials_recomputed", spr.full_recomputed as f64);
            if args.format.is_text() {
                println!();
                println!(
                    "spr round ({} taxa, {} patterns): reuse {:.2} ms (p99 {:.2} ms), \
                     full recompute {:.2} ms",
                    spr.n_taxa,
                    spr.n_patterns,
                    spr.reuse_mean_ns / 1e6,
                    spr.reuse_p99_ns / 1e6,
                    spr.full_mean_ns / 1e6,
                );
                println!(
                    "  newview descriptors executed: {} with reuse vs {} flushed \
                     ({} traversal entries skipped as already valid)",
                    spr.reuse_recomputed, spr.full_recomputed, spr.partials_reused,
                );
                println!("  final lnL bit-identical across modes: {}", spr.final_lnl);
            }
        }
        Err(msg) => {
            eprintln!("kernel study FAILED: {msg}");
            std::process::exit(1);
        }
    }

    if !args.no_artifact {
        let path = bench_artifact_path("kernels");
        bench::or_exit(envelope.write(&path));
        if args.format.is_text() {
            println!("wrote {}", path.display());
        }
    }
    if args.format == OutputFormat::Json {
        print!("{}", envelope.to_json());
    }
}

/// Synthetic inner/inner `newview` operands at a given pattern count —
/// the same deterministic LCG fixture as the criterion benches, sized up.
struct NewviewFixture {
    pl: Vec<Mat4>,
    pr: Vec<Mat4>,
    xl: Vec<f64>,
    xr: Vec<f64>,
    zeros: Vec<u32>,
}

fn newview_fixture(n_patterns: usize) -> NewviewFixture {
    let model = SubstModel::gtr([0.3, 0.2, 0.25, 0.25], [1.2, 3.1, 0.8, 0.9, 3.4, 1.0]).unwrap();
    let gamma = GammaRates::standard(0.7).unwrap();
    let pl: Vec<Mat4> =
        gamma.rates().iter().map(|&r| model.transition_matrix(0.13, r, ExpImpl::Sdk)).collect();
    let pr: Vec<Mat4> =
        gamma.rates().iter().map(|&r| model.transition_matrix(0.31, r, ExpImpl::Sdk)).collect();
    let stride = N_RATES * 4;
    let mut seed = 0.37f64;
    let mut next = move || {
        seed = (seed * 9301.0 + 49297.0) % 233280.0 / 233280.0;
        0.01 + seed
    };
    let aos_l: Vec<f64> = (0..n_patterns * stride).map(|_| next()).collect();
    let aos_r: Vec<f64> = (0..n_patterns * stride).map(|_| next()).collect();
    NewviewFixture {
        pl,
        pr,
        xl: tile_partials(&aos_l, n_patterns, N_RATES),
        xr: tile_partials(&aos_r, n_patterns, N_RATES),
        zeros: vec![0u32; n_patterns],
    }
}

/// Patterns/sec of the inner/inner `newview` case for one kernel width.
fn newview_throughput(n_patterns: usize, kind: KernelKind, reps: usize) -> f64 {
    let f = newview_fixture(n_patterns);
    let mut out = vec![0.0; tiled_len(n_patterns, N_RATES)];
    let mut scale = vec![0u32; n_patterns];
    let run = |out: &mut [f64], scale: &mut [u32]| {
        newview(
            &Child::Inner { x: &f.xl, scale: &f.zeros, pmats: &f.pl },
            &Child::Inner { x: &f.xr, scale: &f.zeros, pmats: &f.pr },
            out,
            scale,
            N_RATES,
            kind,
            ScalingCheck::IntegerCast,
        )
    };
    // Warm-up (page in the buffers, settle the clock).
    for _ in 0..3 {
        black_box(run(&mut out, &mut scale));
    }
    // Best-of-trials: the minimum elapsed time is the least scheduler-noise
    // estimate for a short compute-bound loop.
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(run(&mut out, &mut scale));
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (n_patterns * reps) as f64 / best.max(1e-12)
}

struct SprComparison {
    n_taxa: usize,
    n_patterns: usize,
    reuse_mean_ns: f64,
    reuse_p99_ns: f64,
    full_mean_ns: f64,
    partials_reused: u64,
    reuse_recomputed: u64,
    full_recomputed: u64,
    final_lnl: f64,
}

/// One lazy-SPR round per rep, in both cache modes, from identical warmed
/// starts. Errors (instead of reporting) if the modes ever disagree.
fn spr_comparison(reps: usize, quick: bool) -> Result<SprComparison, String> {
    let (n_taxa, n_sites) = if quick { (10, 600) } else { (12, 1200) };
    let w = SimulationConfig { mean_branch: 0.25, ..SimulationConfig::new(n_taxa, n_sites, 13) }
        .generate();
    let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
    let rates = GammaRates::standard(0.8).unwrap();
    let cfg = LikelihoodConfig::optimized();
    let mut rng = StdRng::seed_from_u64(29);
    let mut start = Tree::random(n_taxa, 0.1, &mut rng).unwrap();
    {
        // Shared warmed start so every rep runs the same round.
        let mut eng = LikelihoodEngine::new(&w.alignment, model.clone(), rates.clone(), cfg);
        eng.optimize_all_branches(&mut start, 2);
    }

    let run_mode = |reuse: bool| -> (Vec<f64>, u64, u64, u64, usize, usize) {
        let mut samples = Vec::with_capacity(reps);
        let (mut lnl_bits, mut reused, mut recomputed) = (0u64, 0u64, 0u64);
        let (mut applied, mut evaluated) = (0usize, 0usize);
        for _ in 0..reps {
            let mut eng = LikelihoodEngine::new(&w.alignment, model.clone(), rates.clone(), cfg);
            let mut tree = start.clone();
            eng.reset_reuse_stats();
            let t0 = Instant::now();
            let stats = spr_round_with_mode(&mut eng, &mut tree, 5, 1e-4, reuse);
            samples.push(t0.elapsed().as_nanos() as f64);
            let r = eng.reuse_stats();
            lnl_bits = stats.log_likelihood.to_bits();
            reused = r.partials_reused;
            recomputed = r.partials_recomputed;
            applied = stats.applied;
            evaluated = stats.evaluated;
        }
        (samples, lnl_bits, reused, recomputed, applied, evaluated)
    };

    let (reuse_samples, reuse_bits, reused, reuse_recomputed, r_app, r_eval) = run_mode(true);
    let (full_samples, full_bits, _, full_recomputed, f_app, f_eval) = run_mode(false);
    if reuse_bits != full_bits {
        return Err(format!(
            "reuse vs full-recompute SPR rounds diverged: lnL bits {reuse_bits:#x} vs \
             {full_bits:#x}"
        ));
    }
    if (r_app, r_eval) != (f_app, f_eval) {
        return Err(format!(
            "reuse vs full-recompute SPR rounds applied different moves: \
             {r_app}/{r_eval} vs {f_app}/{f_eval}"
        ));
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let p99 = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        s[((s.len() - 1) as f64 * 0.99).round() as usize]
    };
    Ok(SprComparison {
        n_taxa,
        n_patterns: w.alignment.n_patterns(),
        reuse_mean_ns: mean(&reuse_samples),
        reuse_p99_ns: p99(&reuse_samples),
        full_mean_ns: mean(&full_samples),
        partials_reused: reused,
        reuse_recomputed,
        full_recomputed,
        final_lnl: f64::from_bits(reuse_bits),
    })
}

// ---------------------------------------------------------------------
// smoke
// ---------------------------------------------------------------------

fn smoke() -> Result<(), String> {
    smoke_kernel_bit_identity()?;
    smoke_reuse_bit_identity()?;
    smoke_envelope_round_trip()?;
    println!("kernel smoke: width bit-identity + reuse bit-identity + envelope all OK");
    Ok(())
}

/// Every kernel width reproduces the scalar kernel to the bit — outputs,
/// per-pattern scale counts and ScaleStats — on a fixture with a ragged
/// tail block and lanes that fire the underflow rescale mid-block.
fn smoke_kernel_bit_identity() -> Result<(), String> {
    let n_patterns = 13; // 8 + ragged 5: exercises full and partial blocks
    let mut f = newview_fixture(n_patterns);
    // Drive patterns 2, 7 and 9 below the scaling threshold in both
    // children so the rescale fires in full and ragged blocks alike.
    for &p in &[2usize, 7, 9] {
        for c in 0..N_RATES {
            for s in 0..4 {
                let idx = phylo::likelihood::kernels::tiled_index(p, c, s, N_RATES);
                f.xl[idx] *= phylo::likelihood::SCALE_THRESHOLD;
                f.xr[idx] *= phylo::likelihood::SCALE_THRESHOLD;
            }
        }
    }
    let run = |kind: KernelKind, scaling: ScalingCheck| -> (Vec<u64>, Vec<u32>, ScaleStats) {
        let mut out = vec![0.0; tiled_len(n_patterns, N_RATES)];
        let mut scale = vec![0u32; n_patterns];
        let stats = newview(
            &Child::Inner { x: &f.xl, scale: &f.zeros, pmats: &f.pl },
            &Child::Inner { x: &f.xr, scale: &f.zeros, pmats: &f.pr },
            &mut out,
            &mut scale,
            N_RATES,
            kind,
            scaling,
        );
        (out.iter().map(|v| v.to_bits()).collect(), scale, stats)
    };
    for scaling in [ScalingCheck::FloatCompare, ScalingCheck::IntegerCast] {
        let reference = run(KernelKind::Scalar, scaling);
        if reference.1.iter().filter(|&&s| s > 0).count() != 3 {
            return Err("underflow fixture did not fire exactly 3 rescales".to_string());
        }
        for (kind, name) in &KINDS[1..] {
            if run(*kind, scaling) != reference {
                return Err(format!("{name} kernel diverged from scalar under {scaling:?}"));
            }
        }
    }
    Ok(())
}

/// Reuse and full-recompute SPR rounds agree bit-for-bit on a small
/// instance, and the reuse mode actually reuses partials.
fn smoke_reuse_bit_identity() -> Result<(), String> {
    let spr = spr_comparison(2, true)?;
    if spr.partials_reused == 0 {
        return Err("reuse mode reported zero partials reused".to_string());
    }
    if spr.reuse_recomputed >= spr.full_recomputed {
        return Err(format!(
            "reuse mode should execute fewer newview descriptors: {} vs {}",
            spr.reuse_recomputed, spr.full_recomputed
        ));
    }
    Ok(())
}

/// The envelope this study writes round-trips through its own JSON.
fn smoke_envelope_round_trip() -> Result<(), String> {
    let mut e = Envelope::new("kernels").with_config("rates", N_RATES);
    e.push_metric("newview_wide4_patterns_per_sec", 123456.0);
    e.push_metric("spr_round_p99", 9e6);
    let back = Envelope::from_json(&e.to_json())?;
    if back.metric("newview_wide4_patterns_per_sec") != Some(123456.0)
        || back.metric("spr_round_p99") != Some(9e6)
    {
        return Err("envelope metrics lost in round trip".to_string());
    }
    Ok(())
}
