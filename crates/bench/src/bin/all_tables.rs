//! Regenerates every table and figure in one run.
//! Pass --quick for the reduced workload.
fn main() {
    let (w, label) = bench::workload_from_args();
    println!("workload: {label}");
    println!("{}", bench::run_all_tables(&w));
}
