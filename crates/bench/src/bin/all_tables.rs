//! Regenerates every table and figure in one run.
//! Pass --quick for the reduced workload.
fn main() {
    let (w, label) = bench::or_exit(bench::workload_from_args());
    println!("workload: {label}");
    println!("{}", bench::or_exit(bench::run_all_tables(&w)));
}
