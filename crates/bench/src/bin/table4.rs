//! Regenerates Table 4 of the paper. Pass --quick for the reduced workload.
fn main() {
    let (w, label) = bench::or_exit(bench::workload_from_args());
    println!("workload: {label}");
    println!("{}", bench::or_exit(bench::ladder_level_text(&w, 4)));
}
