//! Service-tier study: sustained multi-tenant load over the real wire
//! protocol, measuring jobs/sec and end-to-end latency percentiles.
//!
//! The harness is **open-loop**: each tenant thread submits its jobs on a
//! fixed schedule (one every `--interval-ms`, offset so tenants interleave)
//! regardless of how fast the service drains them — so queueing delay shows
//! up in the latencies instead of being hidden by a closed feedback loop.
//! End-to-end latency is client-observed: submit-frame write to the status
//! poll that first reports `done`.
//!
//! Every run also verifies **exactly-once execution** end to end: the set
//! of client-observed completed job ids must be exactly the submitted ids
//! (nothing lost, nothing duplicated), and the service's shutdown report
//! must agree with the farm's own `FarmStats` (`dispatched == farm.n_jobs`,
//! all seals accounted). The `/metrics` endpoint is scraped over HTTP on
//! the same port and validated with the repo's Prometheus validator.
//!
//! Flags (shared surface from `bench::cli`):
//!
//! ```text
//!   --smoke          tiny run + self-checks, no root artifact
//!   --tenants N      concurrent tenants (default 3)
//!   --jobs N         jobs per tenant (default 8)
//!   --workers N      farm workers (default 4)
//!   --interval-ms N  open-loop inter-arrival per tenant (default 30)
//!   --out D          unused (kept for surface uniformity)
//!   --format F       text (default) or json (print the envelope)
//!   --no-artifact    skip writing BENCH_serve.json
//! ```

use bench::artifact::{bench_artifact_path, Envelope, OutputFormat};
use bench::cli::StudyArgs;
use bench::or_exit;
use serve::client::{scrape_metrics, Client};
use serve::server::Server;
use serve::service::{InferenceService, ServiceConfig};
use serve::wire::{JobKind, JobSpec, Preset, WireState};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct LoadConfig {
    tenants: usize,
    jobs_per_tenant: usize,
    workers: usize,
    interval: Duration,
    taxa: usize,
    sites: usize,
}

/// One tenant thread's observations: per-job (id, e2e latency).
struct TenantRun {
    tenant: String,
    jobs: Vec<(u64, Duration)>,
}

fn main() {
    let args = StudyArgs::parse();
    let cfg = LoadConfig {
        tenants: or_exit(args.usize_value("--tenants")).unwrap_or(3).max(1),
        jobs_per_tenant: or_exit(args.usize_value("--jobs"))
            .unwrap_or(if args.smoke { 3 } else { 8 })
            .max(1),
        workers: or_exit(args.usize_value("--workers")).unwrap_or(4).max(1),
        interval: Duration::from_millis(
            or_exit(args.u64_value("--interval-ms")).unwrap_or(if args.smoke { 5 } else { 30 }),
        ),
        taxa: if args.smoke || args.quick { 6 } else { 8 },
        sites: if args.smoke || args.quick { 120 } else { 300 },
    };
    let total = cfg.tenants * cfg.jobs_per_tenant;
    if args.format.is_text() {
        eprintln!(
            "serve_study: {} tenants x {} jobs on {} workers ({}x{} alignment, open loop, {:?} inter-arrival)",
            cfg.tenants, cfg.jobs_per_tenant, cfg.workers, cfg.taxa, cfg.sites, cfg.interval
        );
    }

    // Stand the service + server up on an ephemeral loopback port.
    let aln = phylo::simulate::SimulationConfig::new(cfg.taxa, cfg.sites, 7).generate().alignment;
    let service = Arc::new(or_exit(
        InferenceService::start(ServiceConfig::new(cfg.workers))
            .map_err(|e| format!("starting service: {e}")),
    ));
    service.register_dataset("study", aln);
    let server =
        or_exit(Server::bind("127.0.0.1:0", service.clone()).map_err(|e| format!("binding: {e}")));
    let addr = server.addr();

    // Open-loop multi-tenant load, one client thread per tenant.
    let wall_start = Instant::now();
    let runs: Vec<TenantRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.tenants)
            .map(|t| {
                let cfg = &cfg;
                scope.spawn(move || or_exit(run_tenant(addr, t, cfg)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tenant thread")).collect()
    });
    let wall = wall_start.elapsed();

    // Exactly-once: every submitted id observed done exactly once, and the
    // shutdown report's farm-level accounting agrees.
    let mut seen = HashSet::new();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(total);
    for run in &runs {
        if run.jobs.len() != cfg.jobs_per_tenant {
            fail(&format!(
                "tenant {} finished {} jobs, submitted {}",
                run.tenant,
                run.jobs.len(),
                cfg.jobs_per_tenant
            ));
        }
        for &(id, latency) in &run.jobs {
            if !seen.insert(id) {
                fail(&format!("job id {id} completed twice"));
            }
            latencies_ns.push(latency.as_nanos() as u64);
        }
    }
    if seen.len() != total {
        fail(&format!("observed {} distinct jobs, submitted {total}", seen.len()));
    }

    // Scrape /metrics over HTTP while the server is still up and validate.
    let prom = or_exit(scrape_metrics(addr).map_err(|e| format!("scraping /metrics: {e}")));
    or_exit(obs::validate_prometheus_text(&prom));
    if !prom.contains("serve_submitted_total") {
        fail("/metrics export is missing serve_submitted_total");
    }

    drop(server);
    let report = service.shutdown().expect("first shutdown");
    let s = report.stats;
    if s.accepted != total as u64 || s.completed != total as u64 || s.failed != 0 {
        fail(&format!("service accounting: {s:?}, expected {total} accepted+completed"));
    }
    if report.dispatched != total || report.farm.n_jobs != total {
        fail(&format!(
            "farm cross-check: dispatched {} / farm n_jobs {} != {total}",
            report.dispatched, report.farm.n_jobs
        ));
    }
    if report.sealed_ok + report.sealed_failed != total as u64 || report.sealed_failed != 0 {
        fail(&format!(
            "seal cross-check: ok {} + failed {} != {total}",
            report.sealed_ok, report.sealed_failed
        ));
    }

    latencies_ns.sort_unstable();
    let pct = |q: f64| latencies_ns[((latencies_ns.len() - 1) as f64 * q).round() as usize];
    let jobs_per_sec = total as f64 / wall.as_secs_f64();

    let mut envelope = Envelope::new("serve")
        .with_config("tenants", cfg.tenants)
        .with_config("jobs_per_tenant", cfg.jobs_per_tenant)
        .with_config("workers", cfg.workers)
        .with_config("interval_ms", cfg.interval.as_millis())
        .with_config("taxa", cfg.taxa)
        .with_config("sites", cfg.sites);
    // `_per_sec` / `_p99` suffixes enroll these in the gate's classes.
    envelope.push_metric("serve_jobs_per_sec", jobs_per_sec);
    envelope.push_metric("serve_e2e_ns_p50", pct(0.50) as f64);
    envelope.push_metric("serve_e2e_ns_p90", pct(0.90) as f64);
    envelope.push_metric("serve_e2e_ns_p99", pct(0.99) as f64);
    envelope.push_metric("serve_e2e_ns_max", *latencies_ns.last().unwrap() as f64);
    envelope.push_metric("serve_jobs_total", total as f64);

    if !args.smoke && !args.no_artifact {
        let path = bench_artifact_path("serve");
        or_exit(envelope.write(&path));
        if args.format.is_text() {
            eprintln!("wrote {}", path.display());
        }
    }
    match args.format {
        OutputFormat::Json => print!("{}", envelope.to_json()),
        OutputFormat::Text => {
            println!(
                "{total} jobs exactly-once across {} tenants: {jobs_per_sec:.2} jobs/sec sustained",
                cfg.tenants
            );
            println!(
                "e2e latency: p50 {:.2} ms | p90 {:.2} ms | p99 {:.2} ms | max {:.2} ms",
                pct(0.50) as f64 / 1e6,
                pct(0.90) as f64 / 1e6,
                pct(0.99) as f64 / 1e6,
                *latencies_ns.last().unwrap() as f64 / 1e6,
            );
            println!(
                "farm cross-check: {} dispatched == {} sealed ok, 0 failed",
                report.dispatched, report.sealed_ok
            );
            if args.smoke {
                println!("serve_study smoke: OK");
            }
        }
    }
}

/// One tenant: open-loop submission on a fixed schedule, then observe every
/// job to completion in submission order.
fn run_tenant(addr: SocketAddr, tenant_idx: usize, cfg: &LoadConfig) -> Result<TenantRun, String> {
    let tenant = format!("tenant-{tenant_idx}");
    let mut client = Client::connect(addr).map_err(|e| format!("{tenant}: connect: {e}"))?;
    client.ping().map_err(|e| format!("{tenant}: ping: {e}"))?;

    // Stagger tenants so arrivals interleave instead of bursting together.
    let start = Instant::now() + cfg.interval * tenant_idx as u32 / cfg.tenants as u32;
    let mut submitted: Vec<(u64, Instant)> = Vec::with_capacity(cfg.jobs_per_tenant);
    for j in 0..cfg.jobs_per_tenant {
        let due = start + cfg.interval * j as u32;
        if let Some(pause) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(pause);
        }
        // Distinct seeds per (tenant, job) keep the searches independent.
        let mut spec = JobSpec::new(
            "study",
            JobKind::Search,
            (tenant_idx * 1000 + j) as u64 + 1,
            Preset::Fast,
        );
        spec.max_spr_rounds = Some(1);
        let t0 = Instant::now();
        let id = client
            .submit(&tenant, &spec)
            .map_err(|e| format!("{tenant}: submit: {e}"))?
            .map_err(|r| format!("{tenant}: rejected: {r:?}"))?;
        submitted.push((id, t0));
    }

    let mut jobs = Vec::with_capacity(submitted.len());
    for (id, t0) in submitted {
        let status = client
            .wait_done(id, Duration::from_secs(600))
            .map_err(|e| format!("{tenant}: waiting on job {id}: {e}"))?;
        if status.state != WireState::Done {
            return Err(format!("{tenant}: job {id} ended {:?}: {:?}", status.state, status.error));
        }
        jobs.push((id, t0.elapsed()));
    }
    Ok(TenantRun { tenant, jobs })
}

fn fail(message: &str) -> ! {
    eprintln!("serve_study FAILED: {message}");
    std::process::exit(1);
}
