//! Throughput study: jobs/sec scaling of the inference farm vs worker
//! count on a bootstrap batch workload.
//!
//! Runs the same batch of bootstrap-replicate ML searches through
//! `phylo::farm` with 1/2/4/8 workers, measures jobs/sec from the farm's
//! own accounting, verifies the per-job log-likelihoods are bit-identical
//! across every worker count (the farm's determinism contract), and
//! exports the run's trace-log counters in the JSONL metrics snapshot
//! format (`cellsim::tracelog::to_metrics_jsonl`).
//!
//! On a multi-core machine jobs/sec grows monotonically from 1 to 4
//! workers (the acceptance shape); on a single hardware thread the curve
//! is flat — the binary reports the available parallelism so the numbers
//! can be read in context.
//!
//! Non-smoke runs also leave a schema-versioned envelope at the repo root
//! (`BENCH_throughput.json`) whose `w{N}_jobs_per_sec` metrics enroll in
//! the benchmark regression gate's throughput class.
//!
//! Flags:
//!   --smoke        run the self-check suite (farm mechanics under injected
//!                  faults + a tiny bootstrap batch's worker-count
//!                  invariance + JSONL validity) and exit nonzero on failure
//!   --jobs N       batch size (default 24)
//!   --out D        artifact directory (default: target/throughput_study)
//!   --format F     text (default) or json (print the envelope)
//!   --no-artifact  skip writing BENCH_throughput.json

use bench::artifact::{bench_artifact_path, Envelope, OutputFormat};
use cellsim::tracelog::{validate_jsonl, TraceLog};
use phylo::alignment::PatternAlignment;
use phylo::farm::{run_farm, FarmConfig, FarmError, FarmFaultPlan, FarmStats};
use phylo::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use raxml_cell::FarmTracer;

/// Worker counts swept by the study.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args = StudyArgs::parse();
    if args.smoke {
        match smoke() {
            Ok(()) => {
                println!("throughput smoke: all checks passed");
                return;
            }
            Err(msg) => {
                eprintln!("throughput smoke FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }

    let format = args.format;
    let no_artifact = args.no_artifact;
    let n_jobs: usize = bench::or_exit(args.usize_value("--jobs")).filter(|&n| n > 0).unwrap_or(24);
    let out_dir = args.out_dir("target/throughput_study");
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let aln = SimulationConfig { mean_branch: 0.15, ..SimulationConfig::new(8, 400, 7) }
        .generate()
        .alignment;
    let search = SearchConfig::fast();
    if format.is_text() {
        println!(
            "bootstrap batch: {n_jobs} jobs on {} taxa x {} patterns ({hw} hardware threads)",
            aln.n_taxa(),
            aln.n_patterns()
        );
        println!(
            "{:>8} {:>10} {:>10} {:>8} {:>8}",
            "workers", "elapsed_s", "jobs/sec", "steals", "failed"
        );
    }

    let mut log = TraceLog::enabled();
    let mut reference: Option<Vec<u64>> = None;
    let mut rates: Vec<(usize, f64)> = Vec::new();
    let mut envelope = Envelope::new("throughput")
        .with_config("jobs", n_jobs)
        .with_config("hw_threads", hw)
        .with_config("taxa", aln.n_taxa())
        .with_config("patterns", aln.n_patterns());
    for &w in &WORKER_COUNTS {
        let (bits, stats) = run_batch_traced(&aln, &search, n_jobs, w, Some(&mut log));
        match &reference {
            None => reference = Some(bits),
            Some(r) => {
                if *r != bits {
                    eprintln!("DETERMINISM VIOLATION: lnL bits differ between 1 and {w} workers");
                    std::process::exit(1);
                }
            }
        }
        log.counter(stats.elapsed_nanos, jobs_per_sec_name(w), stats.jobs_per_sec());
        if format.is_text() {
            println!(
                "{:>8} {:>10.3} {:>10.2} {:>8} {:>8}",
                w,
                stats.elapsed_nanos as f64 / 1e9,
                stats.jobs_per_sec(),
                stats.steals,
                stats.n_failed
            );
        }
        // `_per_sec` suffix enrolls these in the gate's throughput class.
        envelope.push_metric(&format!("w{w}_jobs_per_sec"), stats.jobs_per_sec());
        envelope.push_metric(&format!("w{w}_steals"), stats.steals as f64);
        envelope.push_metric(&format!("w{w}_elapsed_s"), stats.elapsed_nanos as f64 / 1e9);
        rates.push((w, stats.jobs_per_sec()));
    }
    if format.is_text() {
        println!("per-job log-likelihoods bit-identical across all worker counts");
    }

    let monotonic_to_4 =
        rates.windows(2).take(2).all(|p| p[1].1 >= p[0].1 * if hw > 1 { 1.0 } else { 0.0 });
    if format.is_text() {
        if hw >= 4 && !monotonic_to_4 {
            println!("note: jobs/sec not monotonic 1->4 despite {hw} hardware threads");
        } else if hw == 1 {
            println!("note: 1 hardware thread available; scaling cannot show on this machine");
        }
    }

    if let Err(e) = write_metrics(&out_dir, &log, format.is_text()) {
        eprintln!("error writing artifacts: {e}");
        std::process::exit(1);
    }
    if !no_artifact {
        let path = bench_artifact_path("throughput");
        bench::or_exit(envelope.write(&path));
        if format.is_text() {
            println!("wrote {}", path.display());
        }
    }
    if format == OutputFormat::Json {
        print!("{}", envelope.to_json());
    }
}

/// Static counter name per swept worker count (trace-log counter names
/// must be `&'static str`).
fn jobs_per_sec_name(workers: usize) -> &'static str {
    match workers {
        1 => "jobs_per_sec_w1",
        2 => "jobs_per_sec_w2",
        4 => "jobs_per_sec_w4",
        8 => "jobs_per_sec_w8",
        _ => "jobs_per_sec",
    }
}

use bench::cli::StudyArgs;

/// Run `n_jobs` bootstrap-replicate searches on the farm with `n_workers`
/// workers (per-worker workspace shards) and return the per-job lnL bits
/// plus the farm's accounting. With a trace log, job lifecycles and the
/// end-of-run aggregates are recorded via the farm-tier bridge.
fn run_batch_traced(
    aln: &PatternAlignment,
    search: &SearchConfig,
    n_jobs: usize,
    n_workers: usize,
    log: Option<&mut TraceLog>,
) -> (Vec<u64>, FarmStats) {
    let seeds: Vec<u64> = (0..n_jobs as u64).map(|i| 0x0b00_7000 + i).collect();
    let config = FarmConfig::new(n_workers);
    let work = |ws: &mut LikelihoodWorkspace, _idx: usize, seed: u64| {
        let owned = std::mem::take(ws);
        let mut rng = StdRng::seed_from_u64(seed);
        let replicate = aln.bootstrap_replicate(&mut rng);
        let outcome = phylo::search::run_inference(
            &replicate,
            &phylo::search::InferenceRequest::new(search.clone(), seed),
            phylo::search::InferenceOptions::new().with_workspace(owned),
        )
        .expect("un-checkpointed search on finite data cannot fail");
        *ws = outcome.workspace;
        outcome.result.log_likelihood.to_bits()
    };
    let outcome = match log {
        Some(log) => {
            let mut tracer = FarmTracer::new(log, 1e9);
            let outcome = run_farm(
                &config,
                seeds,
                |_| LikelihoodWorkspace::new(),
                work,
                Some(&mut tracer),
                |_, _| {},
            );
            tracer.finish(&outcome.stats);
            outcome
        }
        None => run_farm(&config, seeds, |_| LikelihoodWorkspace::new(), work, None, |_, _| {}),
    };
    let stats = outcome.stats.clone();
    let bits = outcome.into_results().expect("bootstrap jobs do not fail");
    (bits, stats)
}

/// Write the metrics snapshot (1 cycle = 1 ns, no SPE lanes — this is a
/// task-tier study) and return its path.
fn write_metrics(dir: &std::path::Path, log: &TraceLog, verbose: bool) -> Result<String, String> {
    let dir = dir.display();
    std::fs::create_dir_all(format!("{dir}")).map_err(|e| format!("create {dir}: {e}"))?;
    let jsonl = log.to_metrics_jsonl(1e9, 0);
    validate_jsonl(&jsonl).map_err(|e| format!("metrics JSONL malformed: {e}"))?;
    let path = format!("{dir}/throughput.metrics.jsonl");
    std::fs::write(&path, &jsonl).map_err(|e| format!("write {path}: {e}"))?;
    if verbose {
        println!("wrote {path}");
    }
    Ok(path)
}

/// Self-check suite for CI.
fn smoke() -> Result<(), String> {
    smoke_farm_mechanics()?;
    smoke_bootstrap_invariance()?;
    println!("throughput smoke: farm mechanics + bootstrap invariance + JSONL all OK");
    Ok(())
}

/// Farm mechanics under stress: hundreds of tiny jobs with an injected
/// job failure, a worker death, and a tight submission bound — every job
/// accounted for exactly once, in order, with typed failures.
fn smoke_farm_mechanics() -> Result<(), String> {
    const N: usize = 300;
    // Job 41 panics on purpose; keep its backtrace out of the CI log.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let config = FarmConfig::new(4)
        .bounded(8)
        .with_fault(FarmFaultPlan::none().fail_job(17).kill_worker_after(3, 0));
    let mut sealed = 0usize;
    let outcome = run_farm(
        &config,
        (0..N as u64).collect::<Vec<_>>(),
        |_| (),
        |(), _, j| {
            if j == 41 {
                panic!("job forty-one exploded");
            }
            j * 3
        },
        None,
        |i, _| {
            if i != sealed {
                // Checked after the run via the error string.
                sealed = usize::MAX;
                return;
            }
            sealed += 1;
        },
    );
    std::panic::set_hook(default_hook);
    if sealed != N {
        return Err(format!("seal order broken: sealed counter ended at {sealed}, want {N}"));
    }
    if outcome.results.len() != N {
        return Err(format!("expected {N} result slots, got {}", outcome.results.len()));
    }
    if outcome.stats.max_in_flight > 8 {
        return Err(format!("capacity bound violated: {} in flight", outcome.stats.max_in_flight));
    }
    if outcome.stats.workers_died != 1 {
        return Err(format!("expected 1 worker death, saw {}", outcome.stats.workers_died));
    }
    for (i, r) in outcome.results.iter().enumerate() {
        match (i, r) {
            (17, Err(FarmError::InjectedFault { job: 17, .. })) => {}
            (41, Err(FarmError::JobPanicked { job: 41, message, .. })) => {
                if !message.contains("forty-one") {
                    return Err(format!("panic payload lost: {message}"));
                }
            }
            (_, Ok(v)) if *v == i as u64 * 3 => {}
            other => return Err(format!("job {i}: unexpected slot {other:?}")),
        }
    }
    if outcome.stats.n_failed != 2 {
        return Err(format!("expected 2 failed jobs, saw {}", outcome.stats.n_failed));
    }
    Ok(())
}

/// A tiny bootstrap batch must produce bit-identical per-job lnLs with 1
/// and 3 workers, and the traced run's JSONL export must validate.
fn smoke_bootstrap_invariance() -> Result<(), String> {
    let aln = SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(6, 200, 3) }
        .generate()
        .alignment;
    let search = SearchConfig::fast();
    let (one, _) = run_batch_traced(&aln, &search, 5, 1, None);
    let mut log = TraceLog::enabled();
    let (three, stats) = run_batch_traced(&aln, &search, 5, 3, Some(&mut log));
    if one != three {
        return Err("lnL bits differ between 1 and 3 workers".to_string());
    }
    if stats.n_jobs != 5 || stats.n_failed != 0 {
        return Err(format!("unexpected accounting: {stats:?}"));
    }
    if log.last_counter("farm_jobs") != Some(5.0) {
        return Err("farm_jobs counter missing from trace log".to_string());
    }
    let dir = std::env::temp_dir().join(format!("raxml-throughput-smoke-{}", std::process::id()));
    let path = write_metrics(&dir, &log, true)?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    validate_jsonl(&text).map_err(|e| format!("{path} failed validation after round trip: {e}"))?;
    if !text.contains("farm_jobs_per_sec") {
        return Err("metrics snapshot missing farm_jobs_per_sec counter".to_string());
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
