//! Criterion benchmarks of the simulator itself: trace pricing throughput
//! and discrete-event scheduling speed. These are the costs of *running the
//! reproduction*, useful when scaling to bigger traces or sweeps.

use cellsim::cost::CostModel;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phylo::trace::{CallParent, KernelEvent, KernelOp};
use raxml_cell::config::OptConfig;
use raxml_cell::offload::price_trace;
use raxml_cell::sched::{compress_phases, des, mgps_makespan, simulate_task_parallel, DesParams};

fn synthetic_trace(n: usize) -> Vec<KernelEvent> {
    (0..n)
        .map(|i| KernelEvent {
            op: match i % 7 {
                6 => KernelOp::Makenewz,
                5 => KernelOp::NewviewTipTip,
                _ => KernelOp::NewviewTipInner,
            },
            parent: if i % 7 == 6 { CallParent::Search } else { CallParent::Makenewz },
            patterns: 240,
            rates: 4,
            exp_calls: 32,
            scaling_checks: 960,
            scalings: 0,
            newton_iters: if i % 7 == 6 { 4 } else { 0 },
            inner_operands: 2,
        })
        .collect()
}

fn bench_pricing(c: &mut Criterion) {
    let model = CostModel::paper_calibrated();
    let trace = synthetic_trace(50_000);
    let mut group = c.benchmark_group("pricing");
    group.sample_size(20);
    for (label, cfg) in
        [("ppe_only", OptConfig::ppe_only()), ("fully_optimized", OptConfig::fully_optimized())]
    {
        group.bench_function(format!("50k_events/{label}"), |b| {
            b.iter(|| price_trace(black_box(&trace), &model, &cfg).sequential_cycles())
        });
    }
    group.finish();
}

fn bench_des(c: &mut Criterion) {
    let model = CostModel::paper_calibrated();
    let trace = synthetic_trace(50_000);
    let priced = price_trace(&trace, &model, &OptConfig::fully_optimized());
    let params = DesParams::default();

    let mut group = c.benchmark_group("des");
    group.sample_size(20);

    let phases = des::phases_for(&priced, 1, model.llp_dispatch, model.edtlp_context_switch, 1.0);
    let compressed = compress_phases(&phases, 4096);
    group.bench_function("edtlp/32_jobs_4096_phases", |b| {
        b.iter(|| simulate_task_parallel(black_box(&compressed), 32, 8, 1, &params).makespan)
    });
    group.bench_function("mgps/128_jobs_end_to_end", |b| {
        b.iter(|| mgps_makespan(black_box(&priced), 128, &model, &params).makespan)
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pricing, bench_des
}
criterion_main!(benches);
