//! Criterion microbenchmarks of the real (host-CPU) likelihood kernels.
//!
//! Each group is the host-side ablation of one paper optimization:
//!
//! * `newview/*`   — scalar vs 2-lane vectorized loops (§5.2.5, Table 5)
//! * `exp/*`       — libm vs SDK-style exponential (§5.2.2, Table 2)
//! * `scaling/*`   — float vs integer-cast conditional (§5.2.3, Table 3)
//! * `evaluate/*`, `makenewz/*` — the other two offloaded kernels (§5.2.7)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phylo::likelihood::kernels::{
    build_sumtable, build_tip_tables, evaluate_lnl, newton_derivatives, newview, tile_partials,
    tiled_len, Child, EvalOperand, Mat4,
};
use phylo::likelihood::{KernelKind, ScalingCheck};
use phylo::math::fast_exp;
use phylo::model::{ExpImpl, GammaRates, SubstModel};

const N_PATTERNS: usize = 250; // the 42_SC regime (~250 distinct patterns)
const N_RATES: usize = 4;

struct Fixture {
    model: SubstModel,
    rates: Vec<f64>,
    pl: Vec<Mat4>,
    pr: Vec<Mat4>,
    xl: Vec<f64>,
    xr: Vec<f64>,
    zeros: Vec<u32>,
    codes: Vec<u8>,
    weights: Vec<f64>,
}

fn fixture() -> Fixture {
    let model = SubstModel::gtr([0.3, 0.2, 0.25, 0.25], [1.2, 3.1, 0.8, 0.9, 3.4, 1.0]).unwrap();
    let gamma = GammaRates::standard(0.7).unwrap();
    let rates = gamma.rates().to_vec();
    let pl: Vec<Mat4> =
        rates.iter().map(|&r| model.transition_matrix(0.13, r, ExpImpl::Sdk)).collect();
    let pr: Vec<Mat4> =
        rates.iter().map(|&r| model.transition_matrix(0.31, r, ExpImpl::Sdk)).collect();
    let stride = N_RATES * 4;
    let mut seed = 0.37f64;
    let mut next = move || {
        seed = (seed * 9301.0 + 49297.0) % 233280.0 / 233280.0;
        0.01 + seed
    };
    // Partials live in the tiled pattern-block layout the kernels consume.
    let aos_l: Vec<f64> = (0..N_PATTERNS * stride).map(|_| next()).collect();
    let aos_r: Vec<f64> = (0..N_PATTERNS * stride).map(|_| next()).collect();
    let xl = tile_partials(&aos_l, N_PATTERNS, N_RATES);
    let xr = tile_partials(&aos_r, N_PATTERNS, N_RATES);
    let zeros = vec![0u32; N_PATTERNS];
    let codes: Vec<u8> = (0..N_PATTERNS).map(|i| ((i % 15) + 1) as u8).collect();
    let weights: Vec<f64> = (0..N_PATTERNS).map(|i| 1.0 + (i % 5) as f64).collect();
    Fixture { model, rates, pl, pr, xl, xr, zeros, codes, weights }
}

fn bench_newview(c: &mut Criterion) {
    let f = fixture();
    let mut out = vec![0.0; tiled_len(N_PATTERNS, N_RATES)];
    let mut scale = vec![0u32; N_PATTERNS];

    let mut group = c.benchmark_group("newview");
    for (kind, kind_name) in [
        (KernelKind::Scalar, "scalar"),
        (KernelKind::Vector, "vector"),
        (KernelKind::Wide4, "wide4"),
        (KernelKind::Wide8, "wide8"),
    ] {
        group.bench_function(format!("inner_inner/{kind_name}"), |b| {
            b.iter(|| {
                newview(
                    &Child::Inner { x: &f.xl, scale: &f.zeros, pmats: &f.pl },
                    &Child::Inner { x: &f.xr, scale: &f.zeros, pmats: &f.pr },
                    black_box(&mut out),
                    &mut scale,
                    N_RATES,
                    kind,
                    ScalingCheck::IntegerCast,
                )
            })
        });
        let lt = build_tip_tables(&f.pl);
        group.bench_function(format!("tip_inner/{kind_name}"), |b| {
            b.iter(|| {
                newview(
                    &Child::Tip { codes: &f.codes, tables: &lt },
                    &Child::Inner { x: &f.xr, scale: &f.zeros, pmats: &f.pr },
                    black_box(&mut out),
                    &mut scale,
                    N_RATES,
                    kind,
                    ScalingCheck::IntegerCast,
                )
            })
        });
        let rt = build_tip_tables(&f.pr);
        group.bench_function(format!("tip_tip/{kind_name}"), |b| {
            b.iter(|| {
                newview(
                    &Child::Tip { codes: &f.codes, tables: &lt },
                    &Child::Tip { codes: &f.codes, tables: &rt },
                    black_box(&mut out),
                    &mut scale,
                    N_RATES,
                    kind,
                    ScalingCheck::IntegerCast,
                )
            })
        });
    }
    group.finish();
}

fn bench_scaling_checks(c: &mut Criterion) {
    let f = fixture();
    let mut out = vec![0.0; tiled_len(N_PATTERNS, N_RATES)];
    let mut scale = vec![0u32; N_PATTERNS];
    let mut group = c.benchmark_group("scaling");
    for (check, name) in
        [(ScalingCheck::FloatCompare, "float_compare"), (ScalingCheck::IntegerCast, "integer_cast")]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                newview(
                    &Child::Inner { x: &f.xl, scale: &f.zeros, pmats: &f.pl },
                    &Child::Inner { x: &f.xr, scale: &f.zeros, pmats: &f.pr },
                    black_box(&mut out),
                    &mut scale,
                    N_RATES,
                    KernelKind::Vector,
                    check,
                )
            })
        });
    }
    group.finish();
}

fn bench_exp(c: &mut Criterion) {
    let args: Vec<f64> = (0..1024).map(|i| -(i as f64) * 0.05).collect();
    let mut group = c.benchmark_group("exp");
    group.bench_function("libm", |b| {
        b.iter(|| args.iter().map(|&x| black_box(x).exp()).sum::<f64>())
    });
    group.bench_function("sdk_fast_exp", |b| {
        b.iter(|| args.iter().map(|&x| fast_exp(black_box(x))).sum::<f64>())
    });
    // The consumer of exp: transition-matrix reconstruction (the "small
    // loop" of §5.2.5).
    let f = fixture();
    group.bench_function("transition_matrix/libm", |b| {
        b.iter(|| {
            f.rates
                .iter()
                .map(|&r| f.model.transition_matrix(black_box(0.2), r, ExpImpl::Libm)[0][0])
                .sum::<f64>()
        })
    });
    group.bench_function("transition_matrix/sdk", |b| {
        b.iter(|| {
            f.rates
                .iter()
                .map(|&r| f.model.transition_matrix(black_box(0.2), r, ExpImpl::Sdk)[0][0])
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("evaluate");
    for (kind, name) in [
        (KernelKind::Scalar, "scalar"),
        (KernelKind::Vector, "vector"),
        (KernelKind::Wide4, "wide4"),
        (KernelKind::Wide8, "wide8"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                evaluate_lnl(
                    &EvalOperand::Tip { codes: &f.codes },
                    &EvalOperand::Inner { x: &f.xr, scale: &f.zeros },
                    &f.pl,
                    f.model.freqs(),
                    black_box(&f.weights),
                    N_RATES,
                    kind,
                )
            })
        });
    }
    group.finish();
}

fn bench_makenewz(c: &mut Criterion) {
    let f = fixture();
    let u = EvalOperand::Tip { codes: &f.codes };
    let v = EvalOperand::Inner { x: &f.xr, scale: &f.zeros };
    let mut group = c.benchmark_group("makenewz");
    group.bench_function("build_sumtable", |b| {
        b.iter(|| {
            build_sumtable(black_box(&u), black_box(&v), &f.model.eigen().w, N_PATTERNS, N_RATES)
        })
    });
    let st = build_sumtable(&u, &v, &f.model.eigen().w, N_PATTERNS, N_RATES);
    for (exp, name) in [(ExpImpl::Libm, "derivatives/libm"), (ExpImpl::Sdk, "derivatives/sdk")] {
        group.bench_function(name, |b| {
            b.iter(|| {
                newton_derivatives(
                    &st,
                    &f.model.eigen().values,
                    &f.rates,
                    black_box(0.17),
                    &f.weights,
                    exp,
                )
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_newview, bench_scaling_checks, bench_exp, bench_evaluate, bench_makenewz
}
criterion_main!(benches);
