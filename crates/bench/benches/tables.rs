//! Regenerates every table and figure of the paper (Tables 1a–8, Figure 3,
//! and the §5.2 profile) from a freshly captured `42_SC`-equivalent
//! workload. Runs under `cargo bench` as a plain harness.

fn main() {
    // `cargo bench --bench tables -- --quick` switches to the reduced
    // workload. The default harness invocation passes flags like `--bench`;
    // only an explicit `--quick` selects the reduced run.
    let quick = std::env::args().any(|a| a == "--quick");
    let label = if quick { "test_mid (quick)" } else { "42_SC-equivalent (ALN42)" };
    eprintln!("capturing workload: {label} — running a real traced inference…");
    let workload =
        bench::or_exit(if quick { bench::quick_workload() } else { bench::aln42_workload() });
    println!("=== RAxML-Cell reproduction: all tables and figures ===");
    println!("workload: {label}");
    println!("{}", bench::or_exit(bench::run_all_tables(&workload)));
}
