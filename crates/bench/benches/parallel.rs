//! Criterion benchmarks of the parallelism layers on the host CPU.
//!
//! * `llp/*` — rayon loop-level parallelism over site patterns (the paper's
//!   third parallelization layer / the RAxML-OMP analogue) on a multi-gene-
//!   sized alignment, where the paper says it "scales particularly well".
//! * `task_level/*` — the master–worker bootstrap scheme (§3.1) at
//!   different worker counts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phylo::likelihood::engine::LikelihoodEngine;
use phylo::likelihood::LikelihoodConfig;
use phylo::model::{GammaRates, SubstModel};
use phylo::parallel::run_master_worker;
use phylo::search::{run_inference, InferenceOptions, InferenceRequest, SearchConfig};
use phylo::simulate::SimulationConfig;
use phylo::tree::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_llp(c: &mut Criterion) {
    // A long multi-gene-style alignment: many patterns so the loop split
    // pays off.
    let w =
        SimulationConfig { mean_branch: 0.2, ..SimulationConfig::new(16, 12_000, 77) }.generate();
    let aln = w.alignment;
    let mut rng = StdRng::seed_from_u64(3);
    let tree = Tree::random(16, 0.1, &mut rng).unwrap();
    let model = SubstModel::gtr(aln.base_frequencies(), [1.0; 6]).unwrap();
    let rates = GammaRates::standard(0.7).unwrap();

    let mut group = c.benchmark_group("llp");
    group.sample_size(15);
    for (parallel, name) in [(false, "sequential"), (true, "rayon")] {
        let cfg = LikelihoodConfig { parallel, ..LikelihoodConfig::optimized() };
        let mut engine = LikelihoodEngine::new(&aln, model.clone(), rates.clone(), cfg);
        group.bench_function(format!("full_tree_lnl/{name}"), |b| {
            b.iter(|| {
                engine.invalidate_all();
                black_box(engine.log_likelihood(&tree))
            })
        });
    }
    group.finish();
}

fn bench_task_level(c: &mut Criterion) {
    // Embarrassingly parallel bootstraps under the master–worker scheme.
    let w = SimulationConfig::new(8, 300, 5).generate();
    let aln = w.alignment;
    let mut search = SearchConfig::fast();
    search.max_spr_rounds = 1;
    search.spr_radius = 2;
    search.optimize_alpha = false;

    let mut group = c.benchmark_group("task_level");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("bootstraps8/workers{workers}"), |b| {
            b.iter(|| {
                let jobs: Vec<u64> = (0..8).collect();
                run_master_worker(jobs, workers, |_, seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let rep = aln.bootstrap_replicate(&mut rng);
                    let request = InferenceRequest::new(search.clone(), seed);
                    run_inference(&rep, &request, InferenceOptions::new())
                        .unwrap()
                        .result
                        .log_likelihood
                })
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_llp, bench_task_level
}
criterion_main!(benches);
