//! Fused `TraversalOps` dispatch vs per-node dispatch, and workspace
//! pooling vs fresh allocation — the host-side benchmarks of the
//! zero-allocation hot-path redesign.
//!
//! `dispatch/*` measures one full-tree likelihood on the ALN42-sized
//! workload (42 taxa × 1167 sites, ~250 patterns): every inner partial
//! recomputed, then one `evaluate`. The fused engine compiles the
//! traversal into a descriptor list executed out of preallocated arenas;
//! the per-node engine walks the historical allocating path.
//!
//! `workspace/*` measures a complete small inference end-to-end, fresh
//! arenas each run vs one recycled workspace (the bootstrap worker's
//! steady state).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phylo::likelihood::engine::LikelihoodEngine;
use phylo::likelihood::{LikelihoodConfig, LikelihoodWorkspace, WorkspaceOptions};
use phylo::model::{GammaRates, SubstModel};
use phylo::search::{run_inference, InferenceOptions, InferenceRequest, SearchConfig};
use phylo::simulate::SimulationConfig;

fn bench_dispatch(c: &mut Criterion) {
    let w = SimulationConfig::aln42().generate();
    let aln = &w.alignment;
    let model = SubstModel::gtr(aln.base_frequencies(), [1.0; 6]).unwrap();
    let rates = GammaRates::standard(0.8).unwrap();
    let config = LikelihoodConfig { parallel: false, ..LikelihoodConfig::optimized() };
    let tree = &w.true_tree;
    let edge = tree.edges()[0];

    let mut group = c.benchmark_group("dispatch");
    for (name, options) in
        [("fused", WorkspaceOptions::default()), ("per_node", WorkspaceOptions::per_node())]
    {
        let mut engine =
            LikelihoodEngine::with_options(aln, model.clone(), rates.clone(), config, options);
        group.bench_function(format!("{name}/full_traversal_aln42"), |b| {
            b.iter(|| {
                engine.invalidate_all();
                black_box(engine.log_likelihood_at(tree, edge))
            })
        });
        group.bench_function(format!("{name}/branch_sweep_aln42"), |b| {
            let edges = tree.edges();
            b.iter(|| {
                let mut acc = 0.0;
                for &e in edges.iter().step_by(8) {
                    engine.invalidate_for_branch(tree, e.0, e.1);
                    acc += engine.log_likelihood_at(tree, e);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_workspace_pooling(c: &mut Criterion) {
    let w = SimulationConfig::new(10, 400, 3).generate();
    let config = SearchConfig::fast();

    let mut group = c.benchmark_group("workspace");
    group.sample_size(10);
    group.bench_function("fresh/inference_10x400", |b| {
        b.iter(|| {
            let request = InferenceRequest::new(config.clone(), 5);
            let outcome = run_inference(&w.alignment, &request, InferenceOptions::new()).unwrap();
            black_box(outcome.result.log_likelihood)
        })
    });
    group.bench_function("pooled/inference_10x400", |b| {
        let mut ws = Some(LikelihoodWorkspace::new());
        b.iter(|| {
            let request = InferenceRequest::new(config.clone(), 5);
            let options = InferenceOptions::new().with_workspace(ws.take().unwrap());
            let outcome = run_inference(&w.alignment, &request, options).unwrap();
            ws = Some(outcome.workspace);
            black_box(outcome.result.log_likelihood)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_workspace_pooling);
criterion_main!(benches);
