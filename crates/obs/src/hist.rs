//! Log-linear latency histograms with a fixed bucket layout.
//!
//! The layout is the HDR-histogram family's log-linear scheme specialised
//! to one compile-time precision: every power-of-two octave is split into
//! [`SUB_BUCKETS`] linear sub-buckets, so the relative quantisation error
//! is bounded by `1/SUB_BUCKETS` (6.25%) while the whole `u64` range fits
//! in [`N_BUCKETS`] buckets. Because the layout is *fixed* (not adaptive),
//! quantile estimates are a pure function of the recorded multiset —
//! deterministic run-to-run — and two histograms merge by adding bucket
//! counts, which is exactly what the farm needs to fold per-worker
//! latency distributions into one process-wide view.
//!
//! Recording is a handful of relaxed atomic operations and never touches
//! the heap; see the `metrics_overhead` integration test at the workspace
//! root for the counting-allocator proof.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 16;

/// Total buckets covering the full `u64` range: 16 exact unit buckets for
/// values `0..16`, then 16 sub-buckets for each octave `4..=63`.
pub const N_BUCKETS: usize = (64 - 3) * SUB_BUCKETS;

/// The bucket index recording value `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // >= 4
        let sub = ((v >> (octave - 4)) & 15) as usize;
        (octave as usize - 3) * SUB_BUCKETS + sub
    }
}

/// The inclusive `[lo, hi]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < N_BUCKETS, "bucket {i} out of range");
    if i < SUB_BUCKETS {
        (i as u64, i as u64)
    } else {
        let octave = (i / SUB_BUCKETS + 3) as u32;
        let sub = (i % SUB_BUCKETS) as u64;
        let width = 1u64 << (octave - 4);
        let lo = (SUB_BUCKETS as u64 + sub) * width;
        // `width - 1` first: the top bucket's `lo + width` is 2^64.
        (lo, lo + (width - 1))
    }
}

/// The shared atomic cell behind a histogram handle. Recording is wait-free
/// (relaxed atomics only) and allocation-free; all allocation happens once
/// at registration time.
#[derive(Debug)]
pub struct HistogramCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values (wrapping — only meaningful until overflow,
    /// which at nanosecond magnitudes is ~584 years of recorded latency).
    sum: AtomicU64,
    max: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> HistogramCell {
        HistogramCell {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }
}

impl HistogramCell {
    /// Record one value. Wait-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Wrapping on overflow; fetch_add on AtomicU64 wraps by definition.
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current state (individual loads are
    /// relaxed; concurrent recording may skew count vs buckets by in-flight
    /// records, which a quiesced reader never sees).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
        }
    }

    /// Zero every cell (used by [`crate::Registry::reset`]).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
    }
}

/// An owned, mergeable copy of a histogram's state. Quantiles are computed
/// here, off the hot path, and are deterministic: the same recorded
/// multiset always yields the same estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, [`N_BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
    /// Largest recorded value (0 while empty).
    pub max: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    pub min: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: vec![0; N_BUCKETS], count: 0, sum: 0, max: 0, min: u64::MAX }
    }
}

impl HistogramSnapshot {
    /// The quantile estimate for `q ∈ [0, 1]`: the upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` value, clamped to the recorded
    /// maximum. Monotone in `q` by construction, and `quantile(1.0)` is
    /// exactly the recorded max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Fold `other` into `self`: the result is indistinguishable from one
    /// histogram that recorded both value streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_have_exact_buckets() {
        for v in 0..16u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_bounds(i), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in [16, 17, 31, 32, 100, 1_000, 65_535, 1 << 40, u64::MAX - 1, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn bucket_layout_is_contiguous_and_increasing() {
        let mut prev_hi = None;
        for i in 0..N_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1u64, "gap before bucket {i}");
            }
            prev_hi = Some(hi);
            if hi == u64::MAX {
                break;
            }
        }
        assert_eq!(prev_hi, Some(u64::MAX));
    }

    #[test]
    fn quantiles_are_deterministic_and_monotone() {
        let h = HistogramCell::default();
        for v in [1u64, 2, 3, 100, 200, 5_000, 5_000, 90_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.max, 90_000);
        assert_eq!(s.min, 1);
        let (p50, p90, p99) = (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max, "{p50} {p90} {p99} {}", s.max);
        assert_eq!(s.quantile(1.0), 90_000);
        assert_eq!(h.snapshot().quantile(0.5), p50, "same state, same estimate");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = HistogramCell::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let a = HistogramCell::default();
        let b = HistogramCell::default();
        let all = HistogramCell::default();
        for v in 0..1000u64 {
            let target = if v % 3 == 0 { &a } else { &b };
            target.record(v * 17);
            all.record(v * 17);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn reset_zeroes_everything() {
        let h = HistogramCell::default();
        h.record(42);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }
}
