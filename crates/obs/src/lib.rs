//! # obs — wall-clock observability substrate
//!
//! `cellsim::tracelog` observes the *simulated cycle domain*; this crate
//! observes the *real engine* in wall-clock time: how long farm jobs
//! actually queue and run, how fast the parallel likelihood dispatchers
//! chew patterns, how long checkpoint writes take. It is a leaf crate
//! (no dependencies) so both `phylo` and the umbrella crates can record
//! into it without layering inversions.
//!
//! The pieces:
//!
//! * [`Registry`] — a process-wide sharded name→metric map handing out
//!   cheap clonable handles ([`Counter`], [`Gauge`], [`Histogram`]).
//!   Registration (the only allocating step) happens once per name; the
//!   handles then record with relaxed atomics only.
//! * [`hist`] — fixed-layout log-linear histograms: deterministic
//!   p50/p90/p99/max estimates, mergeable across farm workers.
//! * Exporters — [`Registry::to_prometheus_text`] (Prometheus text
//!   exposition, checked by [`validate_prometheus_text`]) and
//!   [`Registry::to_jsonl`] (line-delimited JSON snapshots in the same
//!   spirit as `cellsim::tracelog::to_metrics_jsonl`, checked in CI by the
//!   same hand-rolled validator).
//! * [`json`] — the minimal JSON reader the benchmark regression gate
//!   uses to load `BENCH_*.json` envelopes.
//!
//! ## Overhead contract
//!
//! A disabled registry is inert: every `record`/`add`/`set` loads one
//! shared atomic flag and returns — one branch, zero heap operations
//! (proven by the `metrics_overhead` counting-allocator test at the
//! workspace root). An *enabled* registry's record path is also
//! allocation-free (atomics only); only registration and export allocate.
//! The global registry starts disabled, so production hot paths pay the
//! branch and nothing else, and recording never touches floating-point
//! state — enabling metrics cannot perturb log-likelihood bit-identity.

pub mod hist;
pub mod json;

pub use hist::{HistogramCell, HistogramSnapshot};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CounterCell(AtomicU64);

#[derive(Debug, Default)]
struct GaugeCell(AtomicU64); // f64 bits

/// A monotonically increasing counter handle. Clone freely; clones share
/// the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<CounterCell>,
}

impl Counter {
    /// Add `n`. One branch and nothing else when the registry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (stores an `f64`).
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<GaugeCell>,
}

impl Gauge {
    /// Set the value. One branch and nothing else when disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.0.load(Ordering::Relaxed))
    }
}

/// A latency-histogram handle (see [`hist`] for the bucket layout).
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Record one value (typically nanoseconds). One branch and nothing
    /// else when disabled; relaxed atomics only when enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.record(v);
        }
    }

    /// Record the elapsed time since `start` in nanoseconds.
    #[inline]
    pub fn record_since(&self, start: Instant) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.record(start.elapsed().as_nanos() as u64);
        }
    }

    /// An owned copy of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.snapshot()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

const N_SHARDS: usize = 16;

/// The process-wide metrics registry: a sharded name→metric map.
///
/// Handles returned by [`Registry::counter`] / [`Registry::gauge`] /
/// [`Registry::histogram`] are cheap clones sharing one atomic cell;
/// get-or-register by the same name always returns the same cell, so
/// every layer of the system can look its metrics up independently.
/// Lookups take one shard mutex briefly; do them at setup, not per record.
#[derive(Debug)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    shards: Vec<Mutex<Vec<(String, Metric)>>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new(false)
    }
}

impl Registry {
    /// A fresh registry, recording iff `enabled`.
    pub fn new(enabled: bool) -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(enabled)),
            shards: (0..N_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Whether handles currently record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off; affects every handle already handed out.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    fn shard_of(&self, name: &str) -> &Mutex<Vec<(String, Metric)>> {
        // FNV-1a; stable across runs so exports shard identically.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        &self.shards[(h % N_SHARDS as u64) as usize]
    }

    fn get_or_register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        assert!(is_valid_metric_name(name), "invalid metric name {name:?}");
        let mut shard = self.shard_of(name).lock().expect("metrics shard");
        if let Some((_, m)) = shard.iter().find(|(n, _)| n == name) {
            return m.clone();
        }
        let metric = make();
        shard.push((name.to_string(), metric.clone()));
        metric
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind, or is
    /// not a valid Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_register(name, || Metric::Counter(Arc::new(CounterCell::default()))) {
            Metric::Counter(cell) => Counter { enabled: self.enabled.clone(), cell },
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or register the gauge `name` (same panics as [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_register(name, || Metric::Gauge(Arc::new(GaugeCell::default()))) {
            Metric::Gauge(cell) => Gauge { enabled: self.enabled.clone(), cell },
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or register the histogram `name` (same panics as
    /// [`Registry::counter`]). The bucket vector is allocated here, once.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_register(name, || Metric::Histogram(Arc::new(HistogramCell::default()))) {
            Metric::Histogram(cell) => Histogram { enabled: self.enabled.clone(), cell },
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Zero every registered metric (registrations and handles survive).
    /// Used by studies that run several phases through one registry.
    pub fn reset(&self) {
        for shard in &self.shards {
            for (_, metric) in shard.lock().expect("metrics shard").iter() {
                match metric {
                    Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
                    Metric::Gauge(g) => g.0.store(0f64.to_bits(), Ordering::Relaxed),
                    Metric::Histogram(h) => h.reset(),
                }
            }
        }
    }

    /// All registered metrics, sorted by name, with owned value copies.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (name, metric) in shard.lock().expect("metrics shard").iter() {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.0.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => {
                        MetricSnapshot::Gauge(f64::from_bits(g.0.load(Ordering::Relaxed)))
                    }
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                out.push((name.clone(), snap));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Merge every histogram whose name starts with `prefix` into one
    /// snapshot — the cross-worker view of a per-worker histogram family
    /// (e.g. `farm_job_run_ns_w0`, `_w1`, …).
    pub fn merged_histogram(&self, prefix: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for (name, snap) in self.snapshot() {
            if let MetricSnapshot::Histogram(h) = snap {
                if name.starts_with(prefix) {
                    merged.merge(&h);
                }
            }
        }
        merged
    }

    /// Export in the Prometheus text exposition format: one `# TYPE` line
    /// per metric, histograms as cumulative `_bucket{le="…"}` series plus
    /// `_sum`/`_count` (only non-empty buckets are emitted — the fixed
    /// layout has 976, nearly all zero for any real latency stream).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, snap) in self.snapshot() {
            match snap {
                MetricSnapshot::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricSnapshot::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", finite(v)));
                }
                MetricSnapshot::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let le = hist::bucket_bounds(i).1;
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
                }
            }
        }
        out
    }

    /// Export as line-delimited JSON: one object per metric (histograms
    /// carry their deterministic quantile estimates), plus a trailer line
    /// with the registry-wide metric count. Validated in CI by
    /// `cellsim::tracelog::validate_jsonl`.
    pub fn to_jsonl(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();
        for (name, snap) in &snapshot {
            match snap {
                MetricSnapshot::Counter(v) => {
                    out.push_str(&format!(
                        "{{\"metric\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}\n"
                    ));
                }
                MetricSnapshot::Gauge(v) => {
                    out.push_str(&format!(
                        "{{\"metric\":\"gauge\",\"name\":\"{name}\",\"value\":{}}}\n",
                        finite(*v)
                    ));
                }
                MetricSnapshot::Histogram(h) => {
                    let min = if h.count == 0 { 0 } else { h.min };
                    out.push_str(&format!(
                        "{{\"metric\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"sum\":{},\"min\":{min},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}\n",
                        h.count,
                        h.sum,
                        h.max,
                        finite(h.mean()),
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99),
                    ));
                }
            }
        }
        out.push_str(&format!("{{\"metric\":\"registry\",\"metrics\":{}}}\n", snapshot.len()));
        out
    }
}

/// One metric's exported state.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSnapshot),
}

/// Render an `f64` as a JSON/Prometheus-safe number (NaN/inf → 0).
fn finite(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// The process-wide registry the instrumented tiers record into. Starts
/// *disabled*; studies and tests call `global().set_enabled(true)`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(false))
}

// ---------------------------------------------------------------------------
// Prometheus text validation
// ---------------------------------------------------------------------------

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validate Prometheus text exposition format: every non-empty line is a
/// comment (`# TYPE`/`# HELP`) or a `name[{labels}] value` sample with a
/// legal metric name and a parseable value. The export-side analogue of
/// `cellsim::tracelog::validate_json` — CI proves the artifact parses.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(body) = rest.strip_prefix("TYPE ") {
                let mut parts = body.split_whitespace();
                let name = parts.next().ok_or(format!("line {n}: TYPE without name"))?;
                if !is_valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name {name:?}"));
                }
                match parts.next() {
                    Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                    other => return Err(format!("line {n}: bad TYPE kind {other:?}")),
                }
            } else if !rest.starts_with("HELP ") && !rest.is_empty() {
                // Other comments are legal in the format; accept them.
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, value_part) = match line.find([' ', '{']) {
            Some(i) if line.as_bytes()[i] == b'{' => {
                let close =
                    line[i..].find('}').ok_or(format!("line {n}: unterminated label set"))?;
                validate_labels(&line[i + 1..i + close], n)?;
                (&line[..i], line[i + close + 1..].trim_start())
            }
            Some(i) => (&line[..i], line[i + 1..].trim_start()),
            None => return Err(format!("line {n}: sample without value")),
        };
        if !is_valid_metric_name(name_part) {
            return Err(format!("line {n}: bad metric name {name_part:?}"));
        }
        let value = value_part.split_whitespace().next().unwrap_or("");
        if !matches!(value, "+Inf" | "-Inf" | "NaN") && value.parse::<f64>().is_err() {
            return Err(format!("line {n}: unparseable sample value {value:?}"));
        }
    }
    Ok(())
}

fn validate_labels(labels: &str, lineno: usize) -> Result<(), String> {
    if labels.trim().is_empty() {
        return Ok(());
    }
    for pair in labels.split(',') {
        let (key, val) = pair
            .split_once('=')
            .ok_or(format!("line {lineno}: label pair without '=': {pair:?}"))?;
        let key = key.trim();
        if key.is_empty() || !is_valid_metric_name(key) {
            return Err(format!("line {lineno}: bad label name {key:?}"));
        }
        let val = val.trim();
        if !(val.starts_with('"') && val.ends_with('"') && val.len() >= 2) {
            return Err(format!("line {lineno}: label value not quoted: {val:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new(false);
        let c = r.counter("jobs_total");
        let g = r.gauge("load");
        let h = r.histogram("latency_ns");
        c.add(5);
        g.set(1.5);
        h.record(100);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.snapshot().count, 0);
        // Enabling retroactively activates the same handles.
        r.set_enabled(true);
        c.add(5);
        g.set(1.5);
        h.record(100);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 1.5);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn handles_share_cells_by_name() {
        let r = Registry::new(true);
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new(true);
        r.counter("dual");
        r.gauge("dual");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new(true).counter("bad name!");
    }

    #[test]
    fn prometheus_export_validates() {
        let r = Registry::new(true);
        r.counter("farm_jobs_total").add(12);
        r.gauge("farm_jobs_per_sec").set(87.5);
        let h = r.histogram("farm_job_run_ns");
        for v in [100u64, 5_000, 90_000, 90_000] {
            h.record(v);
        }
        let text = r.to_prometheus_text();
        validate_prometheus_text(&text).expect("export must validate");
        assert!(text.contains("# TYPE farm_jobs_total counter"));
        assert!(text.contains("farm_jobs_total 12"));
        assert!(text.contains("# TYPE farm_job_run_ns histogram"));
        assert!(text.contains("farm_job_run_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("farm_job_run_ns_count 4"));
        // Cumulative bucket counts end at the total.
        let last_bucket = text.lines().rfind(|l| l.starts_with("farm_job_run_ns_bucket")).unwrap();
        assert!(last_bucket.ends_with(" 4"));
    }

    #[test]
    fn jsonl_export_parses_with_own_reader() {
        let r = Registry::new(true);
        r.counter("a_total").add(3);
        r.gauge("b").set(0.25);
        r.histogram("c_ns").record(77);
        let jsonl = r.to_jsonl();
        let mut names = Vec::new();
        for line in jsonl.lines() {
            let v = crate::json::parse(line).expect("every line parses");
            if let Some(name) = v.get("name").and_then(crate::json::Json::as_str) {
                names.push(name.to_string());
            }
            if v.get("metric").and_then(crate::json::Json::as_str) == Some("histogram") {
                assert_eq!(v.get("count").and_then(crate::json::Json::as_f64), Some(1.0));
                assert!(v.get("p99").is_some());
            }
        }
        assert_eq!(names, ["a_total", "b", "c_ns"]);
    }

    #[test]
    fn merged_histogram_folds_a_family() {
        let r = Registry::new(true);
        r.histogram("run_ns_w0").record(10);
        r.histogram("run_ns_w1").record(1_000);
        r.histogram("other").record(5);
        let merged = r.merged_histogram("run_ns_w");
        assert_eq!(merged.count, 2);
        assert_eq!(merged.max, 1_000);
        assert_eq!(merged.min, 10);
    }

    #[test]
    fn reset_preserves_registrations() {
        let r = Registry::new(true);
        let c = r.counter("n_total");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("n_total").get(), 1);
    }

    #[test]
    fn prometheus_validator_rejects_garbage() {
        for bad in [
            "not a metric line",
            "name{le=\"1\" 2",
            "name{key=value} 1",
            "9name 1",
            "name abc",
            "# TYPE name nonsense",
        ] {
            assert!(validate_prometheus_text(bad).is_err(), "{bad:?}");
        }
        validate_prometheus_text("# HELP x helpful\n# TYPE x gauge\nx 1.5\nx{a=\"b\",c=\"d\"} 2\n")
            .expect("good text accepted");
    }

    #[test]
    fn global_registry_starts_disabled() {
        // Only check the default state — other tests may enable it later,
        // so don't assert anything time-dependent here.
        let g = global();
        let _ = g.counter("obs_selftest_total");
        assert!(std::ptr::eq(g, global()));
    }
}
