//! A minimal JSON value parser for the benchmark artifacts.
//!
//! The build environment has no serde; `cellsim::tracelog` hand-rolls a
//! *validator* for the exporters, and this module is the complementary
//! *reader* the regression gate needs to load two `BENCH_*.json` envelopes
//! and compare their metric maps. Same recursive-descent grammar, but it
//! builds a [`Json`] tree instead of only checking well-formedness.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse one JSON value (with optional surrounding whitespace).
pub fn parse(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut pos = skip_ws(b, 0);
    let (value, next) = parse_value(b, pos, 0)?;
    pos = skip_ws(b, next);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn parse_value(b: &[u8], pos: usize, depth: usize) -> Result<(Json, usize), String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    match b.get(pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(|(s, p)| (Json::Str(s), p)),
        Some(b't') => parse_lit(b, pos, b"true").map(|p| (Json::Bool(true), p)),
        Some(b'f') => parse_lit(b, pos, b"false").map(|p| (Json::Bool(false), p)),
        Some(b'n') => parse_lit(b, pos, b"null").map(|p| (Json::Null, p)),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, String> {
    if b.len() >= pos + lit.len() && &b[pos..pos + lit.len()] == lit {
        Ok(pos + lit.len())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], mut pos: usize) -> Result<(String, usize), String> {
    let start = pos;
    pos += 1; // opening quote
    let mut out = String::new();
    while pos < b.len() {
        match b[pos] {
            b'"' => return Ok((out, pos + 1)),
            b'\\' => match b.get(pos + 1) {
                Some(b'"') => {
                    out.push('"');
                    pos += 2;
                }
                Some(b'\\') => {
                    out.push('\\');
                    pos += 2;
                }
                Some(b'/') => {
                    out.push('/');
                    pos += 2;
                }
                Some(b'b') => {
                    out.push('\u{8}');
                    pos += 2;
                }
                Some(b'f') => {
                    out.push('\u{c}');
                    pos += 2;
                }
                Some(b'n') => {
                    out.push('\n');
                    pos += 2;
                }
                Some(b'r') => {
                    out.push('\r');
                    pos += 2;
                }
                Some(b't') => {
                    out.push('\t');
                    pos += 2;
                }
                Some(b'u') => {
                    if b.len() < pos + 6 || !b[pos + 2..pos + 6].iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}"));
                    }
                    let hex = std::str::from_utf8(&b[pos + 2..pos + 6]).unwrap();
                    let code = u32::from_str_radix(hex, 16).unwrap();
                    // Surrogates are accepted but rendered as the
                    // replacement character — the artifacts never emit them.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}")),
            },
            0x00..=0x1f => return Err(format!("raw control character in string at byte {pos}")),
            _ => {
                // Copy one UTF-8 scalar (the input is a &str, so this is
                // always a valid boundary walk).
                let ch_len = utf8_len(b[pos]);
                let s = std::str::from_utf8(&b[pos..pos + ch_len])
                    .map_err(|_| format!("bad utf-8 at byte {pos}"))?;
                out.push_str(s);
                pos += ch_len;
            }
        }
    }
    Err(format!("unterminated string starting at byte {start}"))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], mut pos: usize) -> Result<(Json, usize), String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let int_start = pos;
    while pos < b.len() && b[pos].is_ascii_digit() {
        pos += 1;
    }
    if pos == int_start {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        let frac_start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == frac_start {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        let exp_start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == exp_start {
            return Err(format!("bad number at byte {start}"));
        }
    }
    let text = std::str::from_utf8(&b[start..pos]).unwrap();
    let n: f64 = text.parse().map_err(|_| format!("unparseable number at byte {start}"))?;
    Ok((Json::Num(n), pos))
}

fn parse_object(b: &[u8], mut pos: usize, depth: usize) -> Result<(Json, usize), String> {
    pos = skip_ws(b, pos + 1);
    let mut fields = Vec::new();
    if b.get(pos) == Some(&b'}') {
        return Ok((Json::Obj(fields), pos + 1));
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let (key, next) = parse_string(b, pos)?;
        pos = skip_ws(b, next);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        let (value, next) = parse_value(b, pos, depth + 1)?;
        fields.push((key, value));
        pos = skip_ws(b, next);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok((Json::Obj(fields), pos + 1)),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], mut pos: usize, depth: usize) -> Result<(Json, usize), String> {
    pos = skip_ws(b, pos + 1);
    let mut items = Vec::new();
    if b.get(pos) == Some(&b']') {
        return Ok((Json::Arr(items), pos + 1));
    }
    loop {
        let (value, next) = parse_value(b, pos, depth + 1)?;
        items.push(value);
        pos = skip_ws(b, next);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok((Json::Arr(items), pos + 1)),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_envelope_shape() {
        let v = parse(
            r#"{"schema_version":1,"git_rev":"abc","config":{"jobs":24},
               "metrics":{"p99_ns":1.5e3,"ok":true,"note":null,"xs":[1,2]}}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema_version").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("git_rev").and_then(Json::as_str), Some("abc"));
        let m = v.get("metrics").unwrap();
        assert_eq!(m.get("p99_ns").and_then(Json::as_f64), Some(1500.0));
        assert_eq!(m.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(m.get("note"), Some(&Json::Null));
        assert_eq!(m.get("xs"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\n\t\"\\é b""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\\u{e9} b"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1.2.3", "\"x", "{} extra", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn numbers_parse_exactly() {
        assert_eq!(parse("-12.5e-3").unwrap().as_f64(), Some(-0.0125));
        assert_eq!(parse("0").unwrap().as_f64(), Some(0.0));
    }
}
